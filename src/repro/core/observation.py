"""Observation models ``Z_i(o | s)`` for the node POMDP (Equation 3).

The node controller never observes the hidden state directly; it observes
``o_{i,t}``, the number of IDS alerts (weighted by priority) received during
the last time interval.  The paper uses two observation models:

* a *Beta-Binomial* model for the analytical experiments (Appendix E), with
  parameters ``BetaBin(n=10, alpha=0.7, beta=3)`` when healthy and
  ``BetaBin(n=10, alpha=1, beta=0.7)`` when compromised; and
* an *empirical* model ``\\hat{Z}_i`` estimated by maximum likelihood from
  alert traces collected on the testbed (Figure 11).

Both are provided here, together with the structural checks used by
Theorem 1: assumption (D) (full support) and assumption (E) (the TP-2 /
monotone likelihood ratio property), and the Kullback-Leibler divergence
used in Figure 14 and Appendix H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import special, stats

from .node_model import NODE_STATES, NodeState

__all__ = [
    "ObservationModel",
    "BetaBinomialObservationModel",
    "EmpiricalObservationModel",
    "DiscreteObservationModel",
    "kl_divergence",
    "is_tp2",
]


def _normalize(pmf: np.ndarray) -> np.ndarray:
    total = pmf.sum()
    if total <= 0:
        raise ValueError("probability mass function must have positive mass")
    return pmf / total


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """Kullback-Leibler divergence ``D_KL(p || q)`` between two discrete pmfs.

    Zero-probability entries of ``q`` are floored at ``epsilon`` so the
    divergence stays finite, mirroring how the paper computes divergences
    between empirical alert distributions (Appendix H).
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same support")
    p = _normalize(p)
    q = _normalize(np.maximum(q, epsilon))
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def is_tp2(matrix: np.ndarray, atol: float = 1e-12) -> bool:
    """Check whether a non-negative matrix is totally positive of order 2.

    A matrix ``M`` is TP-2 if every 2x2 minor is non-negative, i.e.
    ``M[i, j] * M[k, l] >= M[i, l] * M[k, j]`` for ``i < k`` and ``j < l``.
    Assumption (E) of Theorem 1 requires the observation matrix (rows indexed
    by states ordered H < C, columns by observations) to be TP-2, which is the
    monotone likelihood ratio property.
    """
    matrix = np.asarray(matrix, dtype=float)
    rows, cols = matrix.shape
    for i in range(rows - 1):
        for j in range(cols - 1):
            for k in range(i + 1, rows):
                for l in range(j + 1, cols):
                    minor = matrix[i, j] * matrix[k, l] - matrix[i, l] * matrix[k, j]
                    if minor < -atol:
                        return False
    return True


class ObservationModel:
    """Base class for observation models over a finite alert-count alphabet.

    Subclasses must populate ``self._pmfs``, a mapping from
    :class:`NodeState` to a pmf over ``self.observations``.  The crashed
    state, which produces no observations in the paper (the node simply stops
    reporting), defaults to the healthy-state distribution unless specified,
    so that belief updates remain well defined.
    """

    def __init__(
        self,
        observations: Sequence[int],
        pmfs: Mapping[NodeState, np.ndarray],
    ) -> None:
        self.observations = np.asarray(list(observations), dtype=int)
        if len(self.observations) < 2:
            raise ValueError("observation space must contain at least two symbols")
        self._pmfs: dict[NodeState, np.ndarray] = {}
        for state in NODE_STATES:
            if state in pmfs:
                pmf = _normalize(np.asarray(pmfs[state], dtype=float))
            elif NodeState.HEALTHY in pmfs:
                pmf = _normalize(np.asarray(pmfs[NodeState.HEALTHY], dtype=float))
            else:
                raise ValueError("observation model requires at least the healthy pmf")
            if pmf.shape[0] != self.observations.shape[0]:
                raise ValueError("pmf length must match number of observations")
            self._pmfs[state] = pmf

    # -- queries --------------------------------------------------------------
    @property
    def num_observations(self) -> int:
        return int(self.observations.shape[0])

    def pmf(self, state: NodeState) -> np.ndarray:
        """Return the observation pmf ``Z(. | state)``."""
        return self._pmfs[state].copy()

    def probability(self, observation: int, state: NodeState) -> float:
        """Return ``Z(observation | state)``."""
        index = self._index_of(observation)
        return float(self._pmfs[state][index])

    def matrix(self) -> np.ndarray:
        """Observation matrix with rows ``(H, C, crash)`` and columns ``O``."""
        return np.vstack([self._pmfs[state] for state in NODE_STATES])

    def sampling_cdf(self) -> np.ndarray:
        """Per-state sampling CDFs, shape ``(|S|, |O|)``.

        Each row is the cumulative sum of the state's pmf normalized by its
        final entry — exactly the CDF that ``numpy.random.Generator.choice``
        inverts internally, so ``searchsorted(cdf[s], u, side='right')`` on a
        uniform draw ``u`` reproduces :meth:`sample` bit for bit.  Used by
        the vectorized simulator in :mod:`repro.sim`.
        """
        cdf = self.matrix().cumsum(axis=1)
        cdf /= cdf[:, -1:]
        return cdf

    def index_of(self, observation: int) -> int:
        """Index of ``observation`` in the support array :attr:`observations`."""
        matches = np.nonzero(self.observations == observation)[0]
        if matches.size == 0:
            raise ValueError(f"observation {observation} outside the model support")
        return int(matches[0])

    def indices_of(self, observations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of` over an array of observation values."""
        observations = np.asarray(observations)
        if np.all(np.diff(self.observations) > 0):
            indices = np.searchsorted(self.observations, observations)
            indices = np.clip(indices, 0, self.num_observations - 1)
        else:
            indices = np.array([self.index_of(int(o)) for o in observations.ravel()])
            indices = indices.reshape(observations.shape)
        if not np.array_equal(self.observations[indices], observations):
            raise ValueError("some observations lie outside the model support")
        return indices

    def _index_of(self, observation: int) -> int:
        return self.index_of(observation)

    # -- sampling -------------------------------------------------------------
    def sample(self, state: NodeState, rng: np.random.Generator) -> int:
        """Sample an observation ``o ~ Z(. | state)``."""
        pmf = self._pmfs[state]
        index = int(rng.choice(self.num_observations, p=pmf))
        return int(self.observations[index])

    def sample_many(
        self, state: NodeState, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        pmf = self._pmfs[state]
        indices = rng.choice(self.num_observations, size=count, p=pmf)
        return self.observations[indices]

    # -- Theorem 1 assumptions -------------------------------------------------
    def satisfies_assumption_d(self) -> bool:
        """Assumption D: every observation has positive probability in every state."""
        return all(np.all(self._pmfs[state] > 0.0) for state in (NodeState.HEALTHY, NodeState.COMPROMISED))

    def satisfies_assumption_e(self) -> bool:
        """Assumption E: the (H, C) observation matrix is TP-2."""
        matrix = np.vstack([self._pmfs[NodeState.HEALTHY], self._pmfs[NodeState.COMPROMISED]])
        return is_tp2(matrix)

    # -- information measures ---------------------------------------------------
    def detection_divergence(self) -> float:
        """``D_KL(Z(.|H) || Z(.|C))``: how informative observations are (Fig. 14)."""
        return kl_divergence(self._pmfs[NodeState.HEALTHY], self._pmfs[NodeState.COMPROMISED])

    def divergence_to(self, other: "ObservationModel", state: NodeState) -> float:
        """``D_KL(self(.|state) || other(.|state))`` on the common support."""
        if not np.array_equal(self.observations, other.observations):
            raise ValueError("observation models must share the same support")
        return kl_divergence(self._pmfs[state], other._pmfs[state])


@dataclass(frozen=True)
class BetaBinomialParameters:
    """Parameters of one Beta-Binomial alert distribution."""

    n: int
    alpha: float
    beta: float

    def pmf(self) -> np.ndarray:
        support = np.arange(self.n)
        return np.array(
            [
                float(
                    special.comb(self.n - 1, o)
                    * special.beta(o + self.alpha, self.n - 1 - o + self.beta)
                    / special.beta(self.alpha, self.beta)
                )
                for o in support
            ]
        )


class BetaBinomialObservationModel(ObservationModel):
    """The Beta-Binomial observation model of Appendix E.

    The paper uses ``Z(.|H) = BetaBin(n=10, alpha=0.7, beta=3)`` and
    ``Z(.|C) = BetaBin(n=10, alpha=1, beta=0.7)`` over the alert-count
    alphabet ``O = {0, ..., 9}``.  Compromised replicas skew the distribution
    toward larger alert counts, which yields the TP-2 property required by
    assumption (E).
    """

    def __init__(
        self,
        n: int = 10,
        healthy_alpha: float = 0.7,
        healthy_beta: float = 3.0,
        compromised_alpha: float = 1.0,
        compromised_beta: float = 0.7,
    ) -> None:
        healthy = BetaBinomialParameters(n, healthy_alpha, healthy_beta)
        compromised = BetaBinomialParameters(n, compromised_alpha, compromised_beta)
        observations = list(range(n))
        super().__init__(
            observations,
            {
                NodeState.HEALTHY: healthy.pmf(),
                NodeState.COMPROMISED: compromised.pmf(),
            },
        )
        self.healthy_params = healthy
        self.compromised_params = compromised


class DiscreteObservationModel(ObservationModel):
    """Observation model defined directly by per-state pmfs.

    Useful for tests, ablations, and for constructing perturbed models when
    studying sensitivity to detection accuracy (Figure 14).
    """

    def __init__(
        self,
        observations: Sequence[int],
        healthy_pmf: Sequence[float],
        compromised_pmf: Sequence[float],
        crashed_pmf: Sequence[float] | None = None,
    ) -> None:
        pmfs = {
            NodeState.HEALTHY: np.asarray(healthy_pmf, dtype=float),
            NodeState.COMPROMISED: np.asarray(compromised_pmf, dtype=float),
        }
        if crashed_pmf is not None:
            pmfs[NodeState.CRASHED] = np.asarray(crashed_pmf, dtype=float)
        super().__init__(observations, pmfs)


class EmpiricalObservationModel(ObservationModel):
    """Maximum-likelihood estimate ``\\hat{Z}_i`` from alert samples (Fig. 11).

    The estimator histograms alert counts observed while the node was healthy
    and while it was under intrusion, with add-``smoothing`` pseudo-counts so
    that assumption (D) (full support) holds even for finite samples.  By the
    Glivenko-Cantelli theorem the estimate converges almost surely to the
    true distribution as the number of samples grows, which is the argument
    the paper uses to justify fitting ``\\hat{Z}`` from 25 000 samples.
    """

    def __init__(
        self,
        healthy_samples: Iterable[int],
        compromised_samples: Iterable[int],
        num_observations: int | None = None,
        smoothing: float = 1.0,
    ) -> None:
        healthy = np.asarray(list(healthy_samples), dtype=int)
        compromised = np.asarray(list(compromised_samples), dtype=int)
        if healthy.size == 0 or compromised.size == 0:
            raise ValueError("both sample sets must be non-empty")
        if np.any(healthy < 0) or np.any(compromised < 0):
            raise ValueError("alert counts must be non-negative")
        if num_observations is None:
            num_observations = int(max(healthy.max(), compromised.max())) + 1
        observations = list(range(num_observations))
        healthy_counts = np.bincount(
            np.clip(healthy, 0, num_observations - 1), minlength=num_observations
        ).astype(float)
        compromised_counts = np.bincount(
            np.clip(compromised, 0, num_observations - 1), minlength=num_observations
        ).astype(float)
        healthy_counts += smoothing
        compromised_counts += smoothing
        super().__init__(
            observations,
            {
                NodeState.HEALTHY: healthy_counts,
                NodeState.COMPROMISED: compromised_counts,
            },
        )
        self.num_healthy_samples = int(healthy.size)
        self.num_compromised_samples = int(compromised.size)

    @classmethod
    def from_traces(
        cls,
        traces: Iterable[tuple[int, bool]],
        num_observations: int | None = None,
        smoothing: float = 1.0,
    ) -> "EmpiricalObservationModel":
        """Fit from ``(alert_count, intrusion_flag)`` pairs."""
        healthy: list[int] = []
        compromised: list[int] = []
        for count, intrusion in traces:
            (compromised if intrusion else healthy).append(int(count))
        return cls(healthy, compromised, num_observations=num_observations, smoothing=smoothing)


def poisson_observation_model(
    num_observations: int,
    healthy_rate: float,
    compromised_rate: float,
) -> DiscreteObservationModel:
    """Convenience constructor: truncated-Poisson alert model.

    Used by the emulation layer as the generative process for background
    alerts (healthy) versus intrusion alerts (compromised); the Poisson
    family with ``compromised_rate > healthy_rate`` is TP-2.
    """
    if compromised_rate <= healthy_rate:
        raise ValueError("compromised rate must exceed healthy rate for a useful detector")
    support = np.arange(num_observations)
    healthy = stats.poisson.pmf(support, healthy_rate)
    compromised = stats.poisson.pmf(support, compromised_rate)
    healthy[-1] += stats.poisson.sf(num_observations - 1, healthy_rate)
    compromised[-1] += stats.poisson.sf(num_observations - 1, compromised_rate)
    return DiscreteObservationModel(list(support), healthy, compromised)
