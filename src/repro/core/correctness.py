"""Correctness auditing: the invariants of Proposition 1.

TOLERANCE provides correct service (safety, liveness, validity) when:

(c) at most ``k`` nodes recover simultaneously and at most ``f`` nodes are
    compromised or crashed simultaneously; and
(d) ``N_t >= 2f + 1 + k`` at all times.

The emulation and the consensus layer call :class:`CorrectnessAuditor` every
time-step with a census of node states and recovery actions; the auditor
records violations and exposes the availability bookkeeping used by
``T^(A)``.  A separate :func:`check_safety` helper verifies that a set of
replicas executed the same request sequence (the Safety property), which the
consensus tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "InvariantViolation",
    "CorrectnessAuditor",
    "check_safety",
    "check_validity",
    "tolerance_threshold",
]


def tolerance_threshold(num_nodes: int, k: int = 1) -> int:
    """Tolerance threshold ``f = (N - 1 - k) / 2`` of the hybrid model (Prop. 1).

    Returns the largest integer ``f`` such that ``N >= 2f + 1 + k``.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if k < 0:
        raise ValueError("k must be non-negative")
    return max((num_nodes - 1 - k) // 2, 0)


@dataclass(frozen=True)
class InvariantViolation:
    """Record of a violated Proposition 1 condition at one time-step."""

    time_step: int
    condition: str
    detail: str


@dataclass
class CorrectnessAuditor:
    """Tracks the Proposition 1 invariants over an execution.

    Attributes:
        f: Tolerance threshold.
        k: Maximum parallel recoveries.
    """

    f: int
    k: int = 1
    violations: list[InvariantViolation] = field(default_factory=list)
    steps_audited: int = 0
    steps_available: int = 0

    def audit_step(
        self,
        time_step: int,
        num_nodes: int,
        num_compromised: int,
        num_crashed: int,
        num_recovering: int,
    ) -> bool:
        """Audit one time-step; returns ``True`` when all invariants hold."""
        if min(num_nodes, num_compromised, num_crashed, num_recovering) < 0:
            raise ValueError("counts must be non-negative")
        self.steps_audited += 1
        ok = True

        if num_recovering > self.k:
            self.violations.append(
                InvariantViolation(
                    time_step,
                    "parallel-recoveries",
                    f"{num_recovering} nodes recovering simultaneously, limit is k={self.k}",
                )
            )
            ok = False

        if num_nodes < 2 * self.f + 1 + self.k:
            self.violations.append(
                InvariantViolation(
                    time_step,
                    "replication-factor",
                    f"N_t={num_nodes} below 2f+1+k={2 * self.f + 1 + self.k}",
                )
            )
            ok = False

        failed = num_compromised + num_crashed
        if failed <= self.f:
            self.steps_available += 1
        else:
            self.violations.append(
                InvariantViolation(
                    time_step,
                    "failure-bound",
                    f"{failed} compromised or crashed nodes exceed f={self.f}",
                )
            )
            ok = False
        return ok

    @property
    def availability(self) -> float:
        if self.steps_audited == 0:
            return 1.0
        return self.steps_available / self.steps_audited

    def violation_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.condition] = counts.get(violation.condition, 0) + 1
        return counts

    def all_invariants_held(self) -> bool:
        return not self.violations


def check_safety(executed_sequences: Iterable[Sequence[object]]) -> bool:
    """Safety: every healthy replica executed the same request sequence.

    Replicas may lag (a prefix relationship is allowed, as slower replicas
    simply have not executed the tail yet); diverging histories violate
    safety.
    """
    sequences = [list(seq) for seq in executed_sequences]
    if len(sequences) <= 1:
        return True
    reference = max(sequences, key=len)
    for sequence in sequences:
        if list(reference[: len(sequence)]) != sequence:
            return False
    return True


def check_validity(
    executed_requests: Iterable[object], client_requests: Iterable[object]
) -> bool:
    """Validity: each executed request was sent by a client."""
    sent = set(client_requests)
    return all(request in sent for request in executed_requests)
