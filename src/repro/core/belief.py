"""Belief computation for node controllers (Equation 4 and Appendix A).

A node controller cannot observe whether its replica is compromised.  It
maintains the belief

.. math::

    b_{i,t} = P[S_{i,t} = C \\mid o_{i,1}, a_{i,1}, \\ldots, o_{i,t}, b_{i,1}],

which Appendix A shows is a sufficient statistic for the hidden state and can
be computed with the recursive Bayesian filter

.. math::

    b_{i,t}(s) \\propto Z(o_t \\mid s) \\sum_{s'} b_{i,t-1}(s') f_N(s \\mid s', a_{t-1}).

This module implements that filter in two flavours:

* :class:`BeliefState` / :class:`BeliefFilter` -- filtering over the full
  three-state distribution ``(H, C, crash)``, which is what the emulation
  and the architecture layer use;
* :func:`update_compromise_belief` -- the scalar update over ``b = P[C]``
  restricted to the two live states, which is what the POMDP solvers and the
  threshold strategies of Theorem 1 operate on;
* :func:`batch_update_compromise_belief` -- the vectorized counterpart of
  the scalar update, operating on arrays of beliefs/actions/observations at
  once.  It is the numerical core of the batch simulation engine in
  :mod:`repro.sim` and is bit-compatible with the scalar update.

Degenerate-observation convention
---------------------------------

An observation with zero likelihood under every tracked state leaves the
Bayesian update undefined (the normalizer is zero).  All updates in this
package then follow one convention: *drop the observation* and return the
prediction (the Chapman-Kolmogorov prior), renormalized over the tracked
support.  For the three-state filter the tracked support is ``(H, C,
crash)``; for the two-state update it is the live states ``{H, C}`` (with
``b = 1`` when even the live mass is zero: the node is certainly not
healthy).  Because both fallbacks keep the same prediction, they agree on
the live-conditioned compromise probability ``P[C | alive]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .node_model import NODE_STATES, NodeAction, NodeState, NodeTransitionModel
from .observation import ObservationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- sim)
    from ..sim.kernels import CachedBeliefDynamics

__all__ = [
    "BeliefState",
    "BeliefFilter",
    "update_compromise_belief",
    "batch_update_compromise_belief",
    "belief_transition_distribution",
]


@dataclass(frozen=True)
class BeliefState:
    """Distribution over the three node states at one time-step."""

    healthy: float
    compromised: float
    crashed: float

    def __post_init__(self) -> None:
        total = self.healthy + self.compromised + self.crashed
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"belief must sum to one, got {total}")
        for name in ("healthy", "compromised", "crashed"):
            if getattr(self, name) < -1e-12:
                raise ValueError(f"belief component {name} must be non-negative")

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "BeliefState":
        vector = np.asarray(vector, dtype=float)
        vector = np.clip(vector, 0.0, None)
        vector = vector / vector.sum()
        return cls(float(vector[0]), float(vector[1]), float(vector[2]))

    @classmethod
    def initial(cls, p_a: float) -> "BeliefState":
        """Initial belief ``b_1 = p_A`` used by Problem 1 (Eq. 6a)."""
        return cls(1.0 - p_a, p_a, 0.0)

    def as_vector(self) -> np.ndarray:
        return np.array([self.healthy, self.compromised, self.crashed], dtype=float)

    @property
    def compromise_probability(self) -> float:
        """``P[S = C]`` — the scalar belief used by threshold strategies."""
        return self.compromised

    @property
    def failure_probability(self) -> float:
        """``P[S = C or S = crash]`` — probability the node counts toward f."""
        return self.compromised + self.crashed

    @property
    def live_compromise_probability(self) -> float:
        """``P[S = C | S != crash]``: belief conditioned on the node being alive."""
        live = self.healthy + self.compromised
        if live <= 0.0:
            return 1.0
        return self.compromised / live


class BeliefFilter:
    """Recursive Bayesian filter over the node state (Appendix A).

    The filter is deliberately stateless with respect to observations: the
    caller provides the previous belief, the action taken, and the new
    observation, and receives the posterior belief.  A convenience
    :meth:`run` method filters a whole trajectory.
    """

    def __init__(
        self,
        transition_model: NodeTransitionModel,
        observation_model: ObservationModel,
    ) -> None:
        self.transition_model = transition_model
        self.observation_model = observation_model

    def predict(self, belief: BeliefState, action: NodeAction) -> BeliefState:
        """Chapman-Kolmogorov prediction step (no observation)."""
        prior = belief.as_vector() @ self.transition_model.matrix(action)
        return BeliefState.from_vector(prior)

    def update(
        self,
        belief: BeliefState,
        action: NodeAction,
        observation: int,
    ) -> BeliefState:
        """Full predict + correct step of the belief recursion in Appendix A."""
        prior = belief.as_vector() @ self.transition_model.matrix(action)
        likelihood = np.array(
            [self.observation_model.probability(observation, state) for state in NODE_STATES]
        )
        unnormalized = likelihood * prior
        total = unnormalized.sum()
        if total <= 0.0:
            # Degenerate-observation convention (module docstring): drop the
            # observation and keep the prediction, renormalized over the
            # tracked support (H, C, crash).
            return BeliefState.from_vector(prior)
        return BeliefState.from_vector(unnormalized / total)

    def run(
        self,
        initial_belief: BeliefState,
        actions: list[NodeAction],
        observations: list[int],
    ) -> list[BeliefState]:
        """Filter a trajectory; returns beliefs ``[b_1, b_2, ..., b_T]``."""
        if len(actions) != len(observations):
            raise ValueError("actions and observations must have equal length")
        beliefs = [initial_belief]
        belief = initial_belief
        for action, observation in zip(actions, observations):
            belief = self.update(belief, action, observation)
            beliefs.append(belief)
        return beliefs


def update_compromise_belief(
    belief: float,
    action: NodeAction,
    observation: int,
    transition_model: NodeTransitionModel,
    observation_model: ObservationModel,
) -> float:
    """Scalar belief update over ``b = P[S = C | alive]``.

    The POMDP solvers and the threshold strategies of Theorem 1 work on the
    two live states only (the crashed state is observable in practice: a
    crashed node stops responding and is evicted by the system controller).
    This function performs the Bayesian update restricted to ``{H, C}`` and
    renormalizes over the live states.

    Args:
        belief: Previous belief ``b_{t-1} = P[S_{t-1} = C]``.
        action: Action ``a_{t-1}`` taken at the previous step.
        observation: New observation ``o_t``.
        transition_model: Node transition kernel ``f_N``.
        observation_model: Observation model ``Z``.

    Returns:
        The posterior belief ``b_t`` in ``[0, 1]``.
    """
    if not 0.0 <= belief <= 1.0:
        raise ValueError(f"belief must lie in [0, 1], got {belief}")
    prior_vector = np.array([1.0 - belief, belief, 0.0]) @ transition_model.matrix(action)
    live_states = (NodeState.HEALTHY, NodeState.COMPROMISED)
    weights = np.array(
        [
            observation_model.probability(observation, state) * prior_vector[state]
            for state in live_states
        ]
    )
    total = weights.sum()
    if total <= 0.0:
        # Degenerate-observation convention (module docstring): drop the
        # observation and keep the prediction, renormalized over the tracked
        # support {H, C}; an empty live mass means the node cannot be healthy.
        live_mass = prior_vector[NodeState.HEALTHY] + prior_vector[NodeState.COMPROMISED]
        if live_mass <= 0.0:
            return 1.0
        return float(prior_vector[NodeState.COMPROMISED] / live_mass)
    return float(weights[1] / total)


def _batch_two_state_posterior(
    beliefs: np.ndarray,
    recover_mask: np.ndarray,
    likelihood_healthy: np.ndarray,
    likelihood_compromised: np.ndarray,
    wait_matrix: np.ndarray,
    recover_matrix: np.ndarray,
    workspace: dict | None = None,
    assume_regular: bool = False,
) -> np.ndarray:
    """Vectorized core of the two-state belief recursion.

    Computes, for every element of the batch, the same quantities as
    :func:`update_compromise_belief`: the Chapman-Kolmogorov prediction
    ``[1 - b, b, 0] @ f_N(a)`` followed by the Bayes correction restricted
    to the live states, with the shared degenerate-observation fallback.

    The prediction is evaluated with a batched matrix product so the
    floating-point rounding matches the scalar ``vector @ matrix`` product
    bit for bit; this is what makes the batch simulator in :mod:`repro.sim`
    reproduce scalar trajectories exactly.

    Args:
        beliefs: Previous beliefs ``b_{t-1}``, shape ``(B,)``.
        recover_mask: Boolean array, ``True`` where ``a_{t-1} = R``.
        likelihood_healthy: ``Z(o_t | H)`` per element, shape ``(B,)``.
        likelihood_compromised: ``Z(o_t | C)`` per element, shape ``(B,)``.
        wait_matrix: ``3 x 3`` transition matrix ``f_N(. | ., W)``.
        recover_matrix: ``3 x 3`` transition matrix ``f_N(. | ., R)``.
        workspace: Optional reusable buffer dict for hot loops (the batch
            engine passes one per simulation): ``embedded`` of shape
            ``(B, 3)`` with the third column zeroed, ``prior_wait`` /
            ``prior_recover`` of shape ``(B, 3)``, and optionally ``ones``
            of shape ``(B,)`` for the degenerate-observation fallback.
            Callers supplying a workspace must consume (or copy) the result
            before the next call.
        assume_regular: The caller guarantees the degenerate-observation
            fallback cannot trigger (full-support observation model and
            sub-stochastic-to-live transition rows, Assumption D), so the
            check is skipped.

    Returns:
        Posterior beliefs ``b_t``, shape ``(B,)``.
    """
    beliefs = np.asarray(beliefs, dtype=float)
    batch = beliefs.shape[0]
    if workspace is None:
        embedded = np.zeros((batch, 3))
        prior_wait = None
        prior_recover = None
    else:
        embedded = workspace["embedded"]
        prior_wait = workspace["prior_wait"]
        prior_recover = workspace["prior_recover"]
    embedded[:, 0] = 1.0 - beliefs
    embedded[:, 1] = beliefs
    prior_wait = np.matmul(embedded, wait_matrix, out=prior_wait)
    prior_recover = np.matmul(embedded, recover_matrix, out=prior_recover)
    prior = np.where(recover_mask[:, None], prior_recover, prior_wait)

    weight_healthy = likelihood_healthy * prior[:, 0]
    weight_compromised = likelihood_compromised * prior[:, 1]
    total = weight_healthy + weight_compromised

    if assume_regular or not (total <= 0.0).any():
        # Regular case (every observation has positive likelihood under
        # some live state): one plain division, no masked machinery.
        return weight_compromised / total

    live_mass = prior[:, 0] + prior[:, 1]
    if workspace is not None and "ones" in workspace:
        ones = workspace["ones"]
        ones.fill(1.0)
    else:
        ones = np.ones(batch)
    fallback = np.divide(
        prior[:, 1],
        live_mass,
        out=ones,
        where=live_mass > 0.0,
    )
    posterior = np.divide(
        weight_compromised,
        total,
        out=fallback,
        where=total > 0.0,
    )
    return posterior


def batch_update_compromise_belief(
    beliefs: np.ndarray,
    actions: np.ndarray,
    observations: np.ndarray,
    transition_model: NodeTransitionModel,
    observation_model: ObservationModel,
) -> np.ndarray:
    """Vectorized scalar belief update over arrays of ``(b, a, o)`` triples.

    Semantically identical to calling :func:`update_compromise_belief`
    element by element (including the degenerate-observation fallback), but
    evaluated as batched array operations.  The batch simulation engine in
    :mod:`repro.sim` relies on this routine matching the scalar update bit
    for bit on regular inputs; the equivalence test suite asserts agreement
    to ``1e-10`` on adversarial inputs.

    Args:
        beliefs: Previous beliefs, shape ``(B,)``, each in ``[0, 1]``.
        actions: Actions taken, shape ``(B,)``; values in ``{0, 1}``
            (``NodeAction`` members are accepted, being ``IntEnum``).
        observations: Observations received, shape ``(B,)``; values must lie
            in the observation model's support.
        transition_model: Node transition kernel ``f_N``.
        observation_model: Observation model ``Z``.

    Returns:
        Posterior beliefs, shape ``(B,)``.
    """
    beliefs = np.asarray(beliefs, dtype=float)
    if beliefs.ndim != 1:
        raise ValueError("beliefs must be a one-dimensional array")
    if np.any(beliefs < 0.0) or np.any(beliefs > 1.0):
        raise ValueError("beliefs must lie in [0, 1]")
    actions = np.asarray(actions, dtype=int)
    observations = np.asarray(observations, dtype=int)
    if actions.shape != beliefs.shape or observations.shape != beliefs.shape:
        raise ValueError("beliefs, actions and observations must share one shape")
    if not np.all(np.isin(actions, (int(NodeAction.WAIT), int(NodeAction.RECOVER)))):
        raise ValueError("actions must be NodeAction values (0 = WAIT, 1 = RECOVER)")

    indices = observation_model.indices_of(observations)
    pmf_healthy = observation_model.pmf(NodeState.HEALTHY)
    pmf_compromised = observation_model.pmf(NodeState.COMPROMISED)
    return _batch_two_state_posterior(
        beliefs,
        actions == int(NodeAction.RECOVER),
        pmf_healthy[indices],
        pmf_compromised[indices],
        transition_model.matrix(NodeAction.WAIT),
        transition_model.matrix(NodeAction.RECOVER),
    )


def belief_transition_distribution(
    belief: float,
    action: NodeAction,
    transition_model: NodeTransitionModel,
    observation_model: ObservationModel,
    cache: "CachedBeliefDynamics | None" = None,
) -> list[tuple[float, float]]:
    """Distribution over next beliefs ``(probability, b')`` given ``(b, a)``.

    Used by the belief-MDP value iteration and by the proofs' machinery: for
    every observation ``o`` with positive probability under ``(b, a)`` the
    next belief ``b' = tau(b, a, o)`` occurs with probability ``P[o | b, a]``.

    Args:
        cache: Optional
            :class:`~repro.sim.kernels.CachedBeliefDynamics` memo.  The
            distribution is a pure function of ``(belief, action)`` for
            fixed models, so backward-induction sweeps that revisit grid
            beliefs reuse the exact previously computed list.
    """
    if cache is not None:
        key = ("btd", float(belief), int(action))
        return cache.get(
            key,
            lambda: belief_transition_distribution(
                belief, action, transition_model, observation_model
            ),
        )
    results: list[tuple[float, float]] = []
    prior_vector = np.array([1.0 - belief, belief, 0.0]) @ transition_model.matrix(action)
    live_mass = prior_vector[NodeState.HEALTHY] + prior_vector[NodeState.COMPROMISED]
    if live_mass <= 0.0:
        return [(1.0, 1.0)]
    for observation in observation_model.observations:
        prob_o = sum(
            observation_model.probability(int(observation), state) * prior_vector[state]
            for state in (NodeState.HEALTHY, NodeState.COMPROMISED)
        )
        prob_o /= live_mass
        if prob_o <= 0.0:
            continue
        next_belief = update_compromise_belief(
            belief, action, int(observation), transition_model, observation_model
        )
        results.append((float(prob_o), next_belief))
    # Normalize for numerical safety.
    total = sum(p for p, _ in results)
    if total > 0:
        results = [(p / total, b) for p, b in results]
    return results
