"""Reliability analysis: MTTF and the reliability function (Appendix F, Fig. 6).

The number of healthy nodes in a system without recoveries is a Markov chain
on ``{0, 1, ..., N}``.  Service fails when fewer than ``f + 1`` nodes are
healthy, i.e. when the chain enters the absorbing set
``F = {0, ..., f}``.  Appendix F derives:

* the mean time to failure (MTTF) as the mean hitting time of ``F``,
  obtained by solving a linear system (Gaussian elimination); and
* the reliability function ``R(t) = P[T^(f) > t]`` via the
  Chapman-Kolmogorov equation, ``R(t) = sum_{s not in F} (e_{s1}^T P^t)_s``.

The transition matrix ``P`` is built from the per-node failure probability:
with independent nodes each healthy node fails (crashes or is compromised)
with probability ``p_fail = 1 - (1 - p_a)(1 - p_c1)`` per step, so the
number of healthy nodes follows a binomial thinning process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .node_model import NodeParameters

__all__ = [
    "ReliabilityAnalysis",
    "healthy_nodes_transition_matrix",
    "mean_time_to_failure",
    "reliability_function",
]


def healthy_nodes_transition_matrix(
    num_nodes: int,
    per_node_failure_probability: float,
    absorbing_threshold: int | None = None,
) -> np.ndarray:
    """Transition matrix of the healthy-node-count Markov chain.

    Args:
        num_nodes: Maximum number of nodes ``N`` (states are ``0..N``).
        per_node_failure_probability: Probability that a healthy node fails
            during one time-step.
        absorbing_threshold: If given, states ``0..absorbing_threshold`` are
            made absorbing (used for MTTF computations where the failure set
            ``F = {0..f}`` is absorbing).

    Returns:
        Row-stochastic matrix ``P`` of shape ``(N + 1, N + 1)`` where
        ``P[s, s']`` is the probability of going from ``s`` healthy nodes to
        ``s'`` healthy nodes in one step (without recoveries, ``s' <= s``).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if not 0.0 <= per_node_failure_probability <= 1.0:
        raise ValueError("per_node_failure_probability must be a probability")
    size = num_nodes + 1
    matrix = np.zeros((size, size))
    for s in range(size):
        if absorbing_threshold is not None and s <= absorbing_threshold:
            matrix[s, s] = 1.0
            continue
        # Each of the s healthy nodes fails independently with probability p.
        failures = np.arange(s + 1)
        probs = stats.binom.pmf(failures, s, per_node_failure_probability)
        for num_failures, prob in zip(failures, probs):
            matrix[s, s - num_failures] += prob
    return matrix


def mean_time_to_failure(
    transition_matrix: np.ndarray,
    failure_threshold: int,
    initial_state: int,
) -> float:
    """Mean hitting time of ``F = {0..failure_threshold}`` from ``initial_state``.

    Solves the linear system of Appendix F:
    ``E[T | s] = 0`` for ``s in F`` and
    ``E[T | s] = 1 + sum_{s' not in F} P[s, s'] E[T | s']`` otherwise.
    """
    size = transition_matrix.shape[0]
    if initial_state < 0 or initial_state >= size:
        raise ValueError("initial_state outside the state space")
    if initial_state <= failure_threshold:
        return 0.0
    transient = [s for s in range(size) if s > failure_threshold]
    index = {s: i for i, s in enumerate(transient)}
    n = len(transient)
    # (I - Q) h = 1, where Q is the transient-to-transient block.
    q = np.zeros((n, n))
    for s in transient:
        for s_next in transient:
            q[index[s], index[s_next]] = transition_matrix[s, s_next]
    rhs = np.ones(n)
    hitting_times = np.linalg.solve(np.eye(n) - q, rhs)
    return float(hitting_times[index[initial_state]])


def reliability_function(
    transition_matrix: np.ndarray,
    failure_threshold: int,
    initial_state: int,
    horizon: int,
) -> np.ndarray:
    """Reliability ``R(t) = P[T^(f) > t]`` for ``t = 1..horizon`` (Eq. 18).

    To measure the *first* hitting time the failure set is made absorbing
    before iterating the Chapman-Kolmogorov equation.
    """
    size = transition_matrix.shape[0]
    matrix = transition_matrix.copy()
    for s in range(min(failure_threshold + 1, size)):
        matrix[s, :] = 0.0
        matrix[s, s] = 1.0
    distribution = np.zeros(size)
    distribution[initial_state] = 1.0
    curve = np.empty(horizon)
    for t in range(horizon):
        distribution = distribution @ matrix
        curve[t] = distribution[failure_threshold + 1:].sum()
    return curve


@dataclass
class ReliabilityAnalysis:
    """Convenience wrapper reproducing Figure 6 from node parameters.

    Attributes:
        params: Per-node failure parameters (only ``p_a`` and ``p_c1`` are
            used; recoveries and updates are disabled as in Fig. 6).
        f: Tolerance threshold.
        k: Maximum parallel recoveries (enters the failure condition
            ``N_t < 2f + k + 1`` used by Fig. 6's caption).
    """

    params: NodeParameters
    f: int = 3
    k: int = 1

    @property
    def per_node_failure_probability(self) -> float:
        return 1.0 - (1.0 - self.params.p_a) * (1.0 - self.params.p_c1)

    def failure_threshold(self, initial_nodes: int) -> int:
        """Largest healthy-node count that still counts as failed.

        Figure 6 defines system failure as ``N_t < 2f + k + 1``; with the
        healthy-node chain this corresponds to the absorbing set
        ``{0, ..., 2f + k}`` (capped below the initial node count).
        """
        threshold = 2 * self.f + self.k
        return min(threshold, max(initial_nodes - 1, 0))

    def transition_matrix(self, initial_nodes: int) -> np.ndarray:
        return healthy_nodes_transition_matrix(
            initial_nodes, self.per_node_failure_probability
        )

    def mttf(self, initial_nodes: int) -> float:
        """Mean time to failure ``E[T^(f)]`` starting from ``initial_nodes``."""
        matrix = self.transition_matrix(initial_nodes)
        return mean_time_to_failure(
            matrix, self.failure_threshold(initial_nodes), initial_nodes
        )

    def mttf_curve(self, initial_node_counts: list[int]) -> np.ndarray:
        """MTTF as a function of ``N_1`` (Figure 6a)."""
        return np.array([self.mttf(n) for n in initial_node_counts])

    def reliability_curve(self, initial_nodes: int, horizon: int) -> np.ndarray:
        """Reliability function ``R(t)`` for ``t = 1..horizon`` (Figure 6b)."""
        matrix = self.transition_matrix(initial_nodes)
        return reliability_function(
            matrix, self.failure_threshold(initial_nodes), initial_nodes, horizon
        )
