"""Cost functions for the local and global control problems.

Local level (Problem 1).  The node controller minimizes the bi-objective
``J_i = eta * T^(R) + F^(R)`` (Eq. 5), whose per-step cost is

.. math::

    c_N(s, a) = \\eta s - a \\eta s + a = \\eta \\, s (1 - a) + a,

with ``H = 0``, ``C = 1``, ``W = 0``, ``R = 1``.  In words: waiting while
compromised costs ``eta`` per step (this accumulates into the
time-to-recovery term), and every recovery costs ``1`` (the recovery
frequency term).

Global level (Problem 2).  The system controller minimizes the expected
number of nodes ``J = lim 1/T sum s_t`` subject to the availability
constraint ``T^(A) >= epsilon_A``.  Its Lagrangian-relaxed per-step cost is
``c_lambda(s) = s + lambda * [s < f + 1]`` (Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .node_model import NodeAction, NodeState

__all__ = [
    "node_cost",
    "expected_node_cost",
    "NodeCostFunction",
    "system_cost",
    "lagrangian_system_cost",
    "SystemCostFunction",
]


def node_cost(state: NodeState, action: NodeAction, eta: float = 2.0) -> float:
    """Per-step node cost ``c_N(s, a)`` from Equation (5).

    The crashed state incurs no direct cost here: crashed nodes no longer
    accumulate time-to-recovery (they are evicted by the system controller,
    whose own objective penalizes the loss of redundancy).
    """
    if eta < 1.0:
        raise ValueError(f"eta must be >= 1, got {eta}")
    s = 1.0 if state is NodeState.COMPROMISED else 0.0
    a = 1.0 if action is NodeAction.RECOVER else 0.0
    return eta * s - a * eta * s + a


def expected_node_cost(belief: float, action: NodeAction, eta: float = 2.0) -> float:
    """Expected immediate cost ``c_N(b, a)`` given belief ``b = P[S = C]``.

    This is the belief-space cost used by the POMDP machinery in the proof of
    Theorem 1: ``c_N(b, W) = eta * b`` and ``c_N(b, R) = 1``.
    """
    if not 0.0 <= belief <= 1.0:
        raise ValueError(f"belief must lie in [0, 1], got {belief}")
    if action is NodeAction.RECOVER:
        return 1.0
    return eta * belief


@dataclass(frozen=True)
class NodeCostFunction:
    """Callable wrapper bundling the cost weight ``eta``.

    Using a small object instead of a bare float keeps solver interfaces
    explicit about which objective they optimize.
    """

    eta: float = 2.0

    def __call__(self, state: NodeState, action: NodeAction) -> float:
        return node_cost(state, action, self.eta)

    def on_belief(self, belief: float, action: NodeAction) -> float:
        return expected_node_cost(belief, action, self.eta)

    def matrix(self) -> np.ndarray:
        """Cost matrix ``C[a, s]`` over (action, state) pairs."""
        states = (NodeState.HEALTHY, NodeState.COMPROMISED, NodeState.CRASHED)
        actions = (NodeAction.WAIT, NodeAction.RECOVER)
        return np.array([[self(s, a) for s in states] for a in actions])


def system_cost(state: int) -> float:
    """Per-step cost of the system controller: the number of nodes (Eq. 9)."""
    if state < 0:
        raise ValueError("system state (number of healthy nodes) must be non-negative")
    return float(state)


def lagrangian_system_cost(state: int, f: int, lagrange_multiplier: float) -> float:
    """Lagrangian-relaxed cost ``c_lambda(s) = s + lambda * [s < f + 1]``.

    Penalizes states where the number of healthy nodes drops to ``f`` or
    below, i.e. where correct service can no longer be guaranteed
    (Proposition 1, Appendix D).
    """
    if lagrange_multiplier < 0.0:
        raise ValueError("Lagrange multiplier must be non-negative")
    penalty = lagrange_multiplier if state < f + 1 else 0.0
    return float(state) + penalty


@dataclass(frozen=True)
class SystemCostFunction:
    """Cost of the global CMDP with an optional Lagrangian availability penalty."""

    f: int
    lagrange_multiplier: float = 0.0

    def __call__(self, state: int, action: int = 0) -> float:
        del action  # the cost does not depend on the add action
        return lagrangian_system_cost(state, self.f, self.lagrange_multiplier)

    def availability_indicator(self, state: int) -> float:
        """``[s >= f + 1]``: one when correct service is guaranteed."""
        return 1.0 if state >= self.f + 1 else 0.0

    def vector(self, num_states: int) -> np.ndarray:
        """Cost vector over states ``0..num_states-1``."""
        return np.array([self(s) for s in range(num_states)])
