"""Local node controller: belief tracking + recovery decisions (Section IV).

The :class:`NodeController` is the runtime component executed in the
privileged domain of every TOLERANCE node.  Each time-step it:

1. receives the weighted IDS alert count ``o_t`` from the node's IDS;
2. updates its belief ``b_t`` that the replica is compromised
   (:mod:`repro.core.belief`);
3. queries its recovery strategy ``pi_i(b_t)`` and enforces the
   bounded-time-to-recovery constraint ``a_{k Delta_R} = R`` (Eq. 6b);
4. reports its belief to the system controller.

The controller is deliberately unaware of the true node state; the emulation
layer owns the ground truth and feeds observations only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .belief import update_compromise_belief
from .node_model import NodeAction, NodeParameters, NodeTransitionModel
from .observation import ObservationModel
from .strategies import RecoveryStrategy, ThresholdStrategy

__all__ = ["NodeControllerState", "NodeController"]


@dataclass
class NodeControllerState:
    """Snapshot of a controller's internal state (for logging and tests)."""

    belief: float
    time_since_recovery: int
    total_recoveries: int
    last_action: NodeAction
    last_observation: int | None


class NodeController:
    """Feedback controller for intrusion recovery on a single node.

    Args:
        node_id: Identifier of the node the controller manages.
        params: Node model parameters (defines ``f_N``, ``eta``, ``Delta_R``).
        observation_model: Intrusion detection model ``Z`` (or ``\\hat{Z}``).
        strategy: Recovery strategy; defaults to a conservative threshold
            strategy when not provided.
        enforce_btr: Whether to force a recovery every ``Delta_R`` steps
            (Eq. 6b).  Disabling this reproduces the ``Delta_R = inf`` rows
            of Table 7.
    """

    def __init__(
        self,
        node_id: object,
        params: NodeParameters,
        observation_model: ObservationModel,
        strategy: RecoveryStrategy | None = None,
        enforce_btr: bool = True,
    ) -> None:
        self.node_id = node_id
        self.params = params
        self.observation_model = observation_model
        self.strategy: RecoveryStrategy = strategy if strategy is not None else ThresholdStrategy(0.75)
        self.enforce_btr = enforce_btr
        self.transition_model = NodeTransitionModel(params)
        self.reset()

    # -- lifecycle ---------------------------------------------------------------
    def reset(self) -> None:
        """Reset the controller to its initial belief ``b_1 = p_A`` (Eq. 6a)."""
        self.belief = self.params.p_a
        self.time_since_recovery = 0
        self.total_recoveries = 0
        self.last_action = NodeAction.WAIT
        self.last_observation: int | None = None

    def notify_recovered(self) -> None:
        """Inform the controller that its replica was just recovered.

        Recovery replaces the container, so the belief is reset to the prior
        compromise probability and the BTR clock restarts.
        """
        self.belief = self.params.p_a
        self.time_since_recovery = 0
        self.total_recoveries += 1

    # -- control loop --------------------------------------------------------------
    def btr_deadline_reached(self) -> bool:
        """Whether the BTR constraint forces a recovery at this step."""
        if not self.enforce_btr:
            return False
        delta_r = self.params.delta_r
        if delta_r is math.inf or delta_r == math.inf:
            return False
        return self.time_since_recovery >= int(delta_r) - 1

    def observe(self, observation: int) -> float:
        """Incorporate a new IDS alert observation and return the new belief."""
        self.belief = update_compromise_belief(
            self.belief,
            self.last_action,
            observation,
            self.transition_model,
            self.observation_model,
        )
        self.last_observation = observation
        return self.belief

    def decide(self) -> NodeAction:
        """Choose the recovery action for the current step.

        The decision combines the strategy ``pi_i(b_t)`` with the BTR
        constraint: when the deadline is reached the action is forced to
        ``RECOVER`` regardless of the belief.
        """
        if self.btr_deadline_reached():
            action = NodeAction.RECOVER
        else:
            action = self.strategy.action(self.belief, self.time_since_recovery)
        self.last_action = action
        return action

    def step(self, observation: int) -> tuple[NodeAction, float]:
        """Full controller step: observe, decide, advance internal clocks.

        Returns the chosen action and the posterior belief reported to the
        system controller.
        """
        belief = self.observe(observation)
        action = self.decide()
        if action is NodeAction.RECOVER:
            self.notify_recovered()
        else:
            self.time_since_recovery += 1
        return action, belief

    # -- introspection ----------------------------------------------------------------
    def state(self) -> NodeControllerState:
        return NodeControllerState(
            belief=self.belief,
            time_since_recovery=self.time_since_recovery,
            total_recoveries=self.total_recoveries,
            last_action=self.last_action,
            last_observation=self.last_observation,
        )
