"""Global system controller: eviction and replication-factor control (Section V-B).

The :class:`SystemController` is the single global component of TOLERANCE.
Every time-step it:

1. collects belief states ``b_{1,t}, ..., b_{N_t,t}`` from the node
   controllers; a node that fails to report is considered crashed and is
   evicted (which decrements ``N_t``);
2. computes the CMDP state ``s_t``, the expected number of healthy nodes
   ``floor(sum_i (1 - b_i))``;
3. queries its replication strategy ``pi(a | s_t)`` and, when the sampled
   action is 1, requests that a new node be added (which triggers a MinBFT
   reconfiguration in the architecture layer);
4. enforces the correctness invariant ``N_t >= 2f + 1 + k`` of Proposition 1
   by force-adding a node whenever the invariant is about to be violated and
   the emergency override is enabled.

The controller itself is assumed crash-tolerant (deployed on a Raft cluster,
see :mod:`repro.consensus.raft`); this module only contains the decision
logic.

This scalar implementation is the **bit-parity reference** for the batched
control plane: :class:`repro.control.VectorSystemController` takes the same
decisions for ``B`` fleet episodes per array operation and is asserted
decision-for-decision identical to this class under shared seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .strategies import NeverAddStrategy, ReplicationStrategy, strategy_is_class_aware

__all__ = ["SystemControllerDecision", "SystemController"]


@dataclass(frozen=True)
class SystemControllerDecision:
    """Outcome of one system-controller step.

    Attributes:
        state: The CMDP state ``s_t`` (expected number of healthy nodes).
        add_node: Whether a node addition was requested this step.
        evicted_nodes: Node identifiers evicted because they failed to report.
        emergency_add: Whether the addition was forced by the Prop. 1
            invariant rather than by the strategy.
        add_class: Index of the container class the strategy chose to add
            (into the strategy's ``class_names``), or ``None`` for a
            classless strategy and for emergency adds — those activate the
            first free slot of any class.
    """

    state: int
    add_node: bool
    evicted_nodes: tuple[object, ...]
    emergency_add: bool = False
    add_class: int | None = None


class SystemController:
    """Feedback controller for the replication factor ``N_t``.

    Args:
        f: Tolerance threshold of the consensus protocol.
        k: Maximum number of parallel recoveries (Prop. 1).
        strategy: Replication strategy ``pi``; defaults to never adding.
        smax: Maximum number of nodes the controller will ever request.
        enforce_invariant: Whether to force node additions when
            ``N_t < 2f + 1 + k`` would otherwise be violated.
        seed: Seed of the controller's private randomness (used to sample
            from randomized strategies such as the Theorem 2 mixture).
    """

    def __init__(
        self,
        f: int,
        k: int = 1,
        strategy: ReplicationStrategy | None = None,
        smax: int = 13,
        enforce_invariant: bool = True,
        seed: int | None = None,
    ) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        if k < 1:
            raise ValueError("k must be >= 1")
        if smax < 1:
            raise ValueError("smax must be >= 1")
        self.f = f
        self.k = k
        self.smax = smax
        self.strategy: ReplicationStrategy = strategy if strategy is not None else NeverAddStrategy()
        self.enforce_invariant = enforce_invariant
        self._rng = np.random.default_rng(seed)
        self.total_additions = 0
        self.total_evictions = 0
        self.emergency_additions = 0

    # -- helpers -----------------------------------------------------------------
    @property
    def minimum_nodes(self) -> int:
        """Smallest admissible replication factor ``2f + 1 + k`` (Prop. 1d)."""
        return 2 * self.f + 1 + self.k

    def expected_healthy_nodes(self, beliefs: Mapping[object, float]) -> int:
        """CMDP state ``s_t = floor(sum_i (1 - b_i))`` (Eq. 8)."""
        total = sum(1.0 - float(b) for b in beliefs.values())
        return int(min(max(math.floor(total), 0), self.smax))

    # -- control loop --------------------------------------------------------------
    def step(
        self,
        reported_beliefs: Mapping[object, float],
        registered_nodes: set[object] | None = None,
        current_node_count: int | None = None,
    ) -> SystemControllerDecision:
        """Run one step of the global control loop.

        Args:
            reported_beliefs: Mapping from node id to the belief it reported.
            registered_nodes: The set of nodes the controller expects reports
                from; members absent from ``reported_beliefs`` are evicted.
                Defaults to exactly the reporting nodes (no eviction).
            current_node_count: Current replication factor ``N_t``; defaults
                to the number of registered nodes.  Used for the Prop. 1
                invariant check.

        Returns:
            The decision record for this step.
        """
        if registered_nodes is None:
            registered_nodes = set(reported_beliefs)
        evicted = tuple(sorted((n for n in registered_nodes if n not in reported_beliefs), key=repr))
        self.total_evictions += len(evicted)

        live_beliefs = {n: b for n, b in reported_beliefs.items() if n in registered_nodes}
        state = self.expected_healthy_nodes(live_beliefs)

        if current_node_count is None:
            current_node_count = len(registered_nodes)
        node_count_after_eviction = current_node_count - len(evicted)

        # Class-aware strategies return an action index in {0, ..., C}
        # (0 = wait, c + 1 = add class c); classless ones return {0, 1}.
        action = int(self.strategy.action(state, self._rng))
        add_node = action > 0
        add_class = (
            action - 1 if add_node and strategy_is_class_aware(self.strategy) else None
        )
        emergency = False
        if (
            self.enforce_invariant
            and not add_node
            and node_count_after_eviction < self.minimum_nodes
        ):
            add_node = True
            emergency = True
            self.emergency_additions += 1

        if add_node and node_count_after_eviction >= self.smax:
            # The physical cluster is exhausted; the request is dropped.
            add_node = False
            emergency = False
            add_class = None

        if add_node:
            self.total_additions += 1

        return SystemControllerDecision(
            state=state,
            add_node=add_node,
            evicted_nodes=evicted,
            emergency_add=emergency,
            add_class=add_class,
        )
