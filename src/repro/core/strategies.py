"""Control strategies for the local and global levels.

Local level.  Theorem 1 shows that there is an optimal recovery strategy of
threshold form: recover exactly when the belief ``b_t`` that the replica is
compromised exceeds a threshold ``alpha*_t``.  Corollary 1 shows that the
thresholds are non-decreasing within a BTR window and become
time-independent when ``Delta_R = inf``.  Algorithm 1 parameterizes the
strategy by one threshold per step of the BTR window, which is implemented
here by :class:`MultiThresholdStrategy`.

Global level.  Theorem 2 shows that the optimal replication strategy is a
randomized mixture of two threshold ("order-up-to") strategies, implemented
by :class:`ReplicationThresholdStrategy` and :class:`MixedReplicationStrategy`.
Algorithm 2 yields an arbitrary randomized strategy over the state space,
implemented by :class:`TabularReplicationStrategy`.

Class-aware global level.  On heterogeneous (Table 6 style) fleets the add
action is class-indexed — ``{wait, add(c_1), ..., add(c_C)}`` — and a
strategy is a distribution over ``1 + C`` actions per state:
:class:`ClassTabularReplicationStrategy` (the output of the class-aware
Algorithm 2) and :class:`ClassPreferenceReplicationStrategy` (any classless
strategy lifted to always add one preferred class).  Class-aware strategies
sample their action with **one** uniform via the shared inverse-CDF rule
:func:`sample_action_index`, which both the scalar
:class:`~repro.core.system_controller.SystemController` and the batched
:class:`~repro.control.VectorSystemController` apply with identical float
operations — the bit-parity requirement of the control plane.

Baselines (Section VIII-B).  ``NO-RECOVERY``, ``PERIODIC`` and
``PERIODIC-ADAPTIVE`` replicate the recovery/replication behaviour of the
state-of-the-art systems the paper compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

import numpy as np

from .node_model import NodeAction

__all__ = [
    "RecoveryStrategy",
    "ThresholdStrategy",
    "MultiThresholdStrategy",
    "NoRecoveryStrategy",
    "PeriodicStrategy",
    "BeliefPeriodicStrategy",
    "ReplicationStrategy",
    "ReplicationThresholdStrategy",
    "MixedReplicationStrategy",
    "TabularReplicationStrategy",
    "NeverAddStrategy",
    "AdaptiveHeuristicReplicationStrategy",
    "ClassAwareReplicationStrategy",
    "ClassTabularReplicationStrategy",
    "ClassPreferenceReplicationStrategy",
    "sample_action_index",
    "strategy_is_class_aware",
]


# ---------------------------------------------------------------------------
# Local level: recovery strategies pi_i : [0, 1] x t -> {W, R}
# ---------------------------------------------------------------------------
class RecoveryStrategy(Protocol):
    """Interface of a node recovery strategy ``pi_i(b_t, t)``.

    ``time_since_recovery`` counts the number of steps since the last
    recovery (or since the node joined); strategies that enforce the BTR
    constraint or use time-dependent thresholds (Cor. 1) depend on it.

    Strategies may additionally provide ``action_batch(beliefs, times)``
    mapping same-shaped arrays of beliefs and times-since-recovery to a
    boolean recover mask; the batch simulator in :mod:`repro.sim` uses it to
    apply a strategy to whole batches at once and falls back to an
    element-wise loop over :meth:`action` when it is absent.
    """

    def action(self, belief: float, time_since_recovery: int) -> NodeAction:
        """Return the action to take given the current belief."""
        ...


@dataclass(frozen=True)
class ThresholdStrategy:
    """Time-independent threshold strategy of Theorem 1: recover iff ``b >= alpha``."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"threshold must lie in [0, 1], got {self.alpha}")

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        del time_since_recovery
        return NodeAction.RECOVER if belief >= self.alpha else NodeAction.WAIT

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`action`: boolean recover mask over a belief batch."""
        del time_since_recovery
        return np.asarray(beliefs) >= self.alpha


@dataclass(frozen=True)
class MultiThresholdStrategy:
    """Time-dependent threshold strategy used by Algorithm 1.

    The strategy is parameterized by ``d`` thresholds ``theta_1..theta_d``.
    With a finite BTR constraint ``Delta_R`` the paper sets
    ``d = Delta_R - 1`` and uses threshold ``theta_{min(t, d)}`` at step
    ``t`` of the current BTR window; the recovery at step ``Delta_R`` itself
    is forced by the constraint (handled by the node controller).  With
    ``Delta_R = inf`` a single threshold suffices (Corollary 1).
    """

    thresholds: tuple[float, ...]
    delta_r: float = math.inf

    def __post_init__(self) -> None:
        if len(self.thresholds) == 0:
            raise ValueError("at least one threshold is required")
        for theta in self.thresholds:
            if not 0.0 <= theta <= 1.0:
                raise ValueError(f"thresholds must lie in [0, 1], got {theta}")

    @classmethod
    def from_vector(
        cls, theta: Sequence[float], delta_r: float = math.inf
    ) -> "MultiThresholdStrategy":
        return cls(tuple(float(x) for x in theta), delta_r)

    @classmethod
    def parameter_dimension(cls, delta_r: float) -> int:
        """Dimension ``d`` of the threshold vector for a given ``Delta_R`` (Alg. 1, line 4)."""
        if delta_r is math.inf or delta_r == math.inf:
            return 1
        return max(int(delta_r) - 1, 1)

    def threshold_at(self, time_since_recovery: int) -> float:
        index = min(max(time_since_recovery, 0), len(self.thresholds) - 1)
        return self.thresholds[index]

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        if belief >= self.threshold_at(time_since_recovery):
            return NodeAction.RECOVER
        return NodeAction.WAIT

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`action`: per-element threshold lookup + compare."""
        thresholds = np.asarray(self.thresholds)
        indices = np.clip(np.asarray(time_since_recovery), 0, len(thresholds) - 1)
        return np.asarray(beliefs) >= thresholds[indices]


@dataclass(frozen=True)
class NoRecoveryStrategy:
    """The NO-RECOVERY baseline: never recover (RAMPART / SECURE-RING style)."""

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        del belief, time_since_recovery
        return NodeAction.WAIT

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        del time_since_recovery
        return np.zeros(np.asarray(beliefs).shape, dtype=bool)


@dataclass(frozen=True)
class PeriodicStrategy:
    """The PERIODIC baseline: recover every ``period`` steps regardless of belief.

    This matches the proactive-recovery schedule of PBFT, VM-FIT, WORM-IT and
    the other systems listed in Section VIII-B.  ``period = inf`` degenerates
    to NO-RECOVERY.
    """

    period: float

    def __post_init__(self) -> None:
        if self.period != math.inf and self.period < 1:
            raise ValueError("period must be >= 1 or inf")

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        del belief
        if self.period is math.inf or self.period == math.inf:
            return NodeAction.WAIT
        if time_since_recovery >= int(self.period) - 1:
            return NodeAction.RECOVER
        return NodeAction.WAIT

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`action`: schedule check over a batch of timers."""
        if self.period == math.inf:
            return np.zeros(np.asarray(beliefs).shape, dtype=bool)
        return np.asarray(time_since_recovery) >= int(self.period) - 1


@dataclass(frozen=True)
class BeliefPeriodicStrategy:
    """Periodic recovery plus an emergency belief trigger.

    Not a paper baseline per se, but a useful ablation between PERIODIC and
    TOLERANCE: recover on schedule *or* when the belief exceeds a (typically
    high) threshold.
    """

    period: float
    alpha: float = 0.95

    def action(self, belief: float, time_since_recovery: int = 0) -> NodeAction:
        if belief >= self.alpha:
            return NodeAction.RECOVER
        return PeriodicStrategy(self.period).action(belief, time_since_recovery)

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`action`: belief trigger OR periodic schedule."""
        beliefs = np.asarray(beliefs)
        return (beliefs >= self.alpha) | PeriodicStrategy(self.period).action_batch(
            beliefs, time_since_recovery
        )


# ---------------------------------------------------------------------------
# Global level: replication strategies pi : S_S -> Delta({0, 1})
# ---------------------------------------------------------------------------
class ReplicationStrategy(Protocol):
    """Interface of the system controller strategy ``pi(a | s)``."""

    def add_probability(self, state: int) -> float:
        """Probability of adding a node given ``state`` expected healthy nodes."""
        ...

    def action(self, state: int, rng: np.random.Generator) -> int:
        """Sample the add action in ``{0, 1}``."""
        ...


@dataclass(frozen=True)
class ReplicationThresholdStrategy:
    """Deterministic threshold (order-up-to) strategy: add iff ``s <= beta`` (Thm. 2)."""

    beta: int

    def add_probability(self, state: int) -> float:
        return 1.0 if state <= self.beta else 0.0

    def action(self, state: int, rng: np.random.Generator | None = None) -> int:
        del rng
        return 1 if state <= self.beta else 0


@dataclass(frozen=True)
class MixedReplicationStrategy:
    """Randomized mixture ``kappa * pi_1 + (1 - kappa) * pi_2`` of Theorem 2."""

    strategy_1: ReplicationThresholdStrategy
    strategy_2: ReplicationThresholdStrategy
    kappa: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.kappa <= 1.0:
            raise ValueError(f"kappa must lie in [0, 1], got {self.kappa}")

    def add_probability(self, state: int) -> float:
        return (
            self.kappa * self.strategy_1.add_probability(state)
            + (1.0 - self.kappa) * self.strategy_2.add_probability(state)
        )

    def action(self, state: int, rng: np.random.Generator) -> int:
        return 1 if rng.random() < self.add_probability(state) else 0


@dataclass
class TabularReplicationStrategy:
    """Arbitrary randomized strategy given by a table ``pi(a = 1 | s)``.

    This is the output format of Algorithm 2 (the occupancy-measure LP):
    states not present in the table fall back to ``default_add_probability``.
    """

    add_probabilities: Mapping[int, float]
    default_add_probability: float = 0.0

    def add_probability(self, state: int) -> float:
        prob = self.add_probabilities.get(int(state), self.default_add_probability)
        return float(min(max(prob, 0.0), 1.0))

    def action(self, state: int, rng: np.random.Generator) -> int:
        return 1 if rng.random() < self.add_probability(state) else 0

    def is_threshold_like(self, tolerance: float = 1e-9) -> bool:
        """Check whether the table is non-increasing in ``s`` (Theorem 2 structure).

        The optimal CMDP strategy mixes two thresholds, hence its
        add-probability is non-increasing in the number of healthy nodes and
        takes at most one fractional value.
        """
        states = sorted(self.add_probabilities)
        probs = [self.add_probabilities[s] for s in states]
        return all(probs[i] >= probs[i + 1] - tolerance for i in range(len(probs) - 1))


@dataclass(frozen=True)
class NeverAddStrategy:
    """Static replication: never add nodes (used by all three paper baselines
    except PERIODIC-ADAPTIVE)."""

    def add_probability(self, state: int) -> float:
        del state
        return 0.0

    def action(self, state: int, rng: np.random.Generator | None = None) -> int:
        del state, rng
        return 0


# ---------------------------------------------------------------------------
# Class-aware global level: pi : S_S -> Delta({wait, add(c_1), ..., add(c_C)})
# ---------------------------------------------------------------------------
def sample_action_index(cumulative: np.ndarray, uniform: float) -> int:
    """Inverse-CDF action sampling shared by the scalar and batched paths.

    ``cumulative`` is the cumulative sum of the per-action probabilities;
    the sampled action is the number of cumulative entries ``<= uniform``
    (clipped to the last action against float round-off in the final sum).
    The batched controller applies the identical comparison-and-sum over a
    ``(B, 1 + C)`` cumulative array, so both paths pick the same action for
    the same uniform — bit-parity by construction.
    """
    cumulative = np.asarray(cumulative, dtype=float)
    return int(min((cumulative <= uniform).sum(), cumulative.shape[-1] - 1))


class ClassAwareReplicationStrategy(Protocol):
    """Interface of a class-indexed replication strategy.

    ``action_probabilities(state)`` returns the distribution over the
    ``1 + C`` actions ``{wait, add(c_1), ..., add(c_C)}``; ``class_names``
    fixes the class order (action ``c + 1`` adds a node of
    ``class_names[c]``).  The classless ``add_probability`` marginal makes
    every class-aware strategy usable where a
    :class:`ReplicationStrategy` is expected.
    """

    class_names: tuple[str, ...]

    def action_probabilities(self, state: int) -> np.ndarray:
        """Distribution over ``{wait, add(c_1), ..., add(c_C)}``."""
        ...

    def action(self, state: int, rng: np.random.Generator) -> int:
        """Sample the action index in ``{0, ..., C}`` (0 = wait)."""
        ...


@dataclass(frozen=True)
class ClassTabularReplicationStrategy:
    """Randomized class-indexed strategy given by a ``(S, 1 + C)`` table.

    The output format of the class-aware Algorithm 2
    (:func:`~repro.solvers.cmdp.solve_class_aware_replication_lp`): row
    ``s`` is the distribution ``pi(. | s)`` over wait and the per-class add
    actions.  States beyond the table fall back to the last row.
    """

    class_names: tuple[str, ...]
    probabilities: np.ndarray

    #: One uniform is consumed per decision (inverse-CDF sampling), like
    #: the classless randomized strategies.
    consumes_rng = True

    def __post_init__(self) -> None:
        probabilities = np.asarray(self.probabilities, dtype=float)
        if probabilities.ndim != 2 or probabilities.shape[1] != len(self.class_names) + 1:
            raise ValueError(
                "probabilities must have shape (num_states, 1 + num_classes), "
                f"got {probabilities.shape} for {len(self.class_names)} classes"
            )
        if np.any(probabilities < -1e-9):
            raise ValueError("action probabilities must be non-negative")
        if not np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6):
            raise ValueError("action probabilities must sum to one per state")
        object.__setattr__(self, "probabilities", probabilities)

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def action_probabilities(self, state: int) -> np.ndarray:
        index = min(max(int(state), 0), self.probabilities.shape[0] - 1)
        return self.probabilities[index]

    def add_probability(self, state: int) -> float:
        """Classless marginal: total probability of adding *some* node."""
        return float(1.0 - self.action_probabilities(state)[0])

    def action(self, state: int, rng: np.random.Generator) -> int:
        cumulative = np.cumsum(self.action_probabilities(state))
        return sample_action_index(cumulative, rng.random())


@dataclass(frozen=True)
class ClassPreferenceReplicationStrategy:
    """A classless strategy lifted to always add one preferred class.

    Wraps any :class:`ReplicationStrategy`: the total add probability per
    state is the base strategy's, and all of it lands on ``preferred``.
    This is the natural class-aware baseline pair for a class-blind
    strategy — same add pressure, deliberate class choice — used by the
    class-aware replication benchmark.
    """

    base: ReplicationStrategy
    preferred: str
    class_names: tuple[str, ...]

    consumes_rng = True

    def __post_init__(self) -> None:
        if self.preferred not in self.class_names:
            raise ValueError(
                f"preferred class {self.preferred!r} not among {self.class_names}"
            )

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def action_probabilities(self, state: int) -> np.ndarray:
        p_add = float(min(max(self.base.add_probability(state), 0.0), 1.0))
        row = np.zeros(1 + self.num_classes)
        row[0] = 1.0 - p_add
        row[1 + self.class_names.index(self.preferred)] = p_add
        return row

    def add_probability(self, state: int) -> float:
        return float(min(max(self.base.add_probability(state), 0.0), 1.0))

    def action(self, state: int, rng: np.random.Generator) -> int:
        cumulative = np.cumsum(self.action_probabilities(state))
        return sample_action_index(cumulative, rng.random())


def strategy_is_class_aware(strategy: object) -> bool:
    """Whether a replication strategy chooses *which* class to add.

    Detected structurally: the strategy exposes per-action
    ``action_probabilities`` (or the count-conditioned batched variant
    ``action_probabilities_batch``) plus the ``class_names`` order.
    """
    return hasattr(strategy, "class_names") and (
        hasattr(strategy, "action_probabilities")
        or hasattr(strategy, "action_probabilities_batch")
    )


@dataclass(frozen=True)
class AdaptiveHeuristicReplicationStrategy:
    """The PERIODIC-ADAPTIVE replication heuristic of Section VIII-B.

    Adds a node when the observed alert level exceeds twice its expectation,
    ``o_t >= 2 E[O_t]``, approximating the timeout/rule-based adaptation of
    SITAR, ITUA and ITSI.  The caller supplies the current maximum alert
    observation across nodes via :meth:`observe`; the strategy is stateful in
    that respect but cheap to copy.
    """

    alert_mean: float
    factor: float = 2.0

    def triggered(self, max_alert_observation: float) -> bool:
        return max_alert_observation >= self.factor * self.alert_mean

    def add_probability(self, state: int) -> float:
        # Without alert context the heuristic does not add; the environment
        # calls `triggered` directly with the latest observation.
        del state
        return 0.0

    def action(self, state: int, rng: np.random.Generator | None = None) -> int:
        del state, rng
        return 0
