"""Optional numba backend: the whole fused step in one nopython loop.

The step loop below mirrors the scalar
:meth:`~repro.solvers.evaluation.RecoverySimulator.run_episode` faithfully —
transition CDF inversion, observation draw, belief update, reset masks and
the delay bookkeeping — as plain scalar Python over ``(episode, node, step)``
triples, which numba JITs into a single allocation-free machine loop.  When
numba is not installed the same function runs as pure Python: the backend's
*semantics* are testable everywhere, only its *speed* needs the optional
dependency (``pip install .[kernels]``), and backend selection degrades to
the fused NumPy backend with a warning rather than failing.

Tolerance tier (versioned)
--------------------------

Unlike the NumPy backends, the JIT loop is **not bit-exact** against the
scalar simulator: the belief prediction ``(1-b) * M[0,s] + b * M[1,s]`` is
evaluated with two-rounding multiply-add, while the reference BLAS product
rounds once through a fused-multiply-add chain.  Beliefs can therefore
differ in the final ulp.  The contract, versioned as
:data:`NUMBA_TOLERANCE_TIER`:

* **Same-seed determinism is bitwise:** two runs of the same workload on
  the same build return identical arrays.
* **Whenever no belief falls within one ulp of an active threshold, the
  integer trajectories coincide with the NumPy backends and every statistic
  agrees exactly.**  A last-ulp belief difference at a threshold boundary
  can flip one action and decouple that episode; the effect on a batch mean
  is ``O(1/B)``, which ``stat_atol`` bounds with a wide margin.

Strategies expressible as per-node threshold tables (all core strategy
classes plus :class:`~repro.sim.strategies.BatchMultiThreshold`) run in the
JIT loop; anything else (e.g. a wrapped PPO policy) falls back to the fused
NumPy backend transparently.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.strategies import (
    BeliefPeriodicStrategy,
    MultiThresholdStrategy,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
)
from ..strategies import BatchMultiThreshold, LoopedBatchStrategy
from .fused import FusedKernel

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

__all__ = ["HAVE_NUMBA", "NUMBA_TOLERANCE_TIER", "NumbaKernel"]

HAVE_NUMBA = numba is not None

#: Versioned exactness contract of the numba backend (see module docstring).
NUMBA_TOLERANCE_TIER = {
    "version": 1,
    # Batch-mean statistics vs. the bit-exact NumPy backends.
    "stat_atol": 2e-2,
    "stat_rtol": 1e-6,
    # Per-step beliefs along a shared (non-diverged) trajectory.
    "belief_atol": 1e-12,
    # Repeated same-seed runs of this backend itself.
    "determinism": "bitwise",
}


def _simulate_loop(
    uniforms: np.ndarray,  # (B, N, W) float64, C-contiguous
    thresholds: np.ndarray,  # (N, B, D) float64
    deadlines: np.ndarray,  # (N,) int64 (BTR + periodic schedules folded in)
    m4: np.ndarray,  # (N, 4, 2) live-state rows [W_H; W_C; R_H; R_C]
    like_h: np.ndarray,  # (N, O) Z(o | H)
    like_c: np.ndarray,  # (N, O) Z(o | C)
    tcdf: np.ndarray,  # (N, 2, 3, 3) transition sampling CDFs
    ocdf: np.ndarray,  # (N, 3, O) observation sampling CDFs
    init_belief: np.ndarray,  # (N,)
    eta: np.ndarray,  # (N,)
    horizon: int,
    f: int,  # tolerance threshold, -1 when availability is untracked
):
    num_episodes, num_nodes, _ = uniforms.shape
    depth = thresholds.shape[2]
    num_obs = like_h.shape[1]

    state = np.zeros((num_episodes, num_nodes), np.int64)
    belief = np.empty((num_episodes, num_nodes))
    tsr = np.zeros((num_episodes, num_nodes), np.int64)
    cursor = np.zeros((num_episodes, num_nodes), np.int64)
    open_active = np.zeros((num_episodes, num_nodes), np.bool_)
    open_count = np.zeros((num_episodes, num_nodes), np.int64)
    total_cost = np.zeros((num_episodes, num_nodes))
    recoveries = np.zeros((num_episodes, num_nodes), np.int64)
    compromises = np.zeros((num_episodes, num_nodes), np.int64)
    delay_sum = np.zeros((num_episodes, num_nodes))
    delay_count = np.zeros((num_episodes, num_nodes), np.int64)
    available = np.zeros(num_episodes, np.int64)
    for b in range(num_episodes):
        for j in range(num_nodes):
            belief[b, j] = init_belief[j]

    for _t in range(horizon):
        for b in range(num_episodes):
            failed = 0
            for j in range(num_nodes):
                s = state[b, j]
                bel = belief[b, j]
                k = tsr[b, j]
                d = k if k < depth else depth - 1
                act = bel >= thresholds[j, b, d] or k >= deadlines[j]
                if act:
                    total_cost[b, j] += 1.0
                    recoveries[b, j] += 1
                    if open_active[b, j]:
                        delay_sum[b, j] += open_count[b, j]
                        delay_count[b, j] += 1
                        open_active[b, j] = False
                elif s == 1:
                    total_cost[b, j] += eta[j]

                u = uniforms[b, j, cursor[b, j]]
                cursor[b, j] += 1
                ai = 1 if act else 0
                ns = 0
                if tcdf[j, ai, s, 0] <= u:
                    ns += 1
                if tcdf[j, ai, s, 1] <= u:
                    ns += 1

                if ns == 2:
                    # Crash: the node is replaced by a fresh healthy node;
                    # no observation is drawn (the uniform is not consumed).
                    if open_active[b, j]:
                        delay_sum[b, j] += open_count[b, j]
                        delay_count[b, j] += 1
                        open_active[b, j] = False
                    state[b, j] = 0
                    belief[b, j] = init_belief[j]
                    tsr[b, j] = 0
                    failed += 1
                    continue

                if s != 1 and ns == 1:
                    compromises[b, j] += 1
                    open_active[b, j] = True
                    open_count[b, j] = 0
                elif ns == 0:
                    if open_active[b, j] and not act:
                        delay_sum[b, j] += open_count[b, j]
                        delay_count[b, j] += 1
                    open_active[b, j] = False
                if open_active[b, j]:
                    open_count[b, j] += 1
                if ns == 1:
                    failed += 1

                u2 = uniforms[b, j, cursor[b, j]]
                cursor[b, j] += 1
                o = 0
                while o < num_obs and ocdf[j, ns, o] <= u2:
                    o += 1

                if act:
                    belief[b, j] = init_belief[j]
                    tsr[b, j] = 0
                else:
                    row = 2 * ai
                    p0 = (1.0 - bel) * m4[j, row, 0] + bel * m4[j, row + 1, 0]
                    p1 = (1.0 - bel) * m4[j, row, 1] + bel * m4[j, row + 1, 1]
                    wh = like_h[j, o] * p0
                    wc = like_c[j, o] * p1
                    tot = wh + wc
                    if tot > 0.0:
                        belief[b, j] = wc / tot
                    else:
                        lm = p0 + p1
                        belief[b, j] = p1 / lm if lm > 0.0 else 1.0
                    tsr[b, j] = k + 1
                state[b, j] = ns
            if f >= 0 and failed <= f:
                available[b] += 1

    # End-of-episode censoring of unresolved compromises.
    for b in range(num_episodes):
        for j in range(num_nodes):
            if open_active[b, j]:
                delay_sum[b, j] += open_count[b, j]
                delay_count[b, j] += 1

    return total_cost, recoveries, compromises, delay_sum, delay_count, available


_jit_loop = None


def _get_loop(jit: bool):
    """The JIT-compiled loop when requested and available, else pure Python."""
    global _jit_loop
    if jit and HAVE_NUMBA:
        if _jit_loop is None:
            _jit_loop = numba.njit(cache=True)(_simulate_loop)
        return _jit_loop
    return _simulate_loop


class NumbaKernel:
    """JIT backend; degrades to :class:`FusedKernel` where it cannot apply.

    Args:
        engine: The owning :class:`~repro.sim.engine.BatchRecoveryEngine`.
        force_python: Run the step loop as pure Python even when numba is
            installed — used by the tolerance-tier tests, which check the
            backend's semantics independently of the optional dependency.
    """

    name = "numba"
    #: Exactness contract: the versioned :data:`NUMBA_TOLERANCE_TIER`.
    bit_exact = False

    def __init__(self, engine, force_python: bool = False) -> None:
        self.engine = engine
        self.force_python = force_python
        self._fused = FusedKernel(engine)
        pmf = engine._observation_pmf  # (N, |S|, |O|)
        self._like_h = np.ascontiguousarray(pmf[:, 0, :])
        self._like_c = np.ascontiguousarray(pmf[:, 1, :])
        self._tcdf = np.ascontiguousarray(engine._transition_cdf)
        self._ocdf = np.ascontiguousarray(engine._observation_cdf)

    # The stepwise API stays on the bit-exact fused path: only the closed
    # run loop is JITted (and covered by the tolerance tier).
    def make_step_workspace(self, num_episodes: int) -> dict:
        return self._fused.make_step_workspace(num_episodes)

    def update_beliefs(self, *args, **kwargs):
        return self._fused.update_beliefs(*args, **kwargs)

    def simulate(self, strategies, uniforms, profile=None, trellis=None):
        from ..engine import BatchSimulationResult  # deferred: package cycle

        from time import perf_counter_ns

        engine = self.engine
        num_episodes = uniforms.shape[0]
        table = self._threshold_table(strategies, num_episodes)
        if table is None:
            # Not expressible as threshold tables (e.g. a wrapped learned
            # policy): run on the fused NumPy backend instead.
            return self._fused.simulate(
                strategies, uniforms, profile=profile, trellis=trellis
            )
        thresholds, deadlines = table
        loop = _get_loop(jit=not self.force_python)
        scenario = engine.scenario
        t0 = perf_counter_ns()
        (
            total_cost,
            recoveries,
            compromises,
            delay_sum,
            delay_count,
            available,
        ) = loop(
            np.ascontiguousarray(uniforms, dtype=np.float64),
            thresholds,
            deadlines,
            self._fused.m4,
            self._like_h,
            self._like_c,
            self._tcdf,
            self._ocdf,
            engine._initial_belief,
            engine._eta,
            scenario.horizon,
            -1 if scenario.f is None else int(scenario.f),
        )
        if profile is not None:
            profile.backend = self.name if not self.force_python else "numba(python)"
            profile.add("jit_loop", perf_counter_ns() - t0)
            profile.steps += scenario.horizon
        horizon = scenario.horizon
        time_to_recovery = np.divide(
            delay_sum,
            delay_count,
            out=np.zeros_like(delay_sum),
            where=delay_count > 0,
        )
        return BatchSimulationResult(
            average_cost=total_cost / horizon,
            time_to_recovery=time_to_recovery,
            recovery_frequency=recoveries / horizon,
            num_recoveries=recoveries,
            num_compromises=compromises,
            steps=horizon,
            availability=(available / horizon) if scenario.f is not None else None,
        )

    def _threshold_table(self, strategies, num_episodes: int):
        """Per-node ``(N, B, D)`` threshold tables, or ``None`` if inexpressible.

        Periodic schedules fold into the per-node deadline (they share the
        BTR constraint's ``time_since_recovery >= deadline`` form); pure
        threshold strategies pad their vectors with the last entry, which is
        exactly the ``theta_{min(t, d-1)}`` clamping of the scalar strategy.
        """
        deadlines = self.engine._btr_deadline.copy()
        vectors: list[np.ndarray] = []
        for j, strategy in enumerate(strategies):
            if isinstance(strategy, LoopedBatchStrategy):
                strategy = strategy.strategy
            if isinstance(strategy, ThresholdStrategy):
                vec = np.array([[strategy.alpha]])
            elif isinstance(strategy, MultiThresholdStrategy):
                vec = np.asarray(strategy.thresholds, dtype=float)[None, :]
            elif isinstance(strategy, BatchMultiThreshold):
                thresholds = strategy.thresholds
                vec = thresholds[None, :] if thresholds.ndim == 1 else thresholds
            elif isinstance(strategy, NoRecoveryStrategy):
                vec = np.array([[2.0]])  # beliefs are <= 1: never triggers
            elif isinstance(strategy, PeriodicStrategy):
                vec = np.array([[2.0]])
                if strategy.period != math.inf:
                    deadlines[j] = min(deadlines[j], int(strategy.period) - 1)
            elif isinstance(strategy, BeliefPeriodicStrategy):
                vec = np.array([[strategy.alpha]])
                if strategy.period != math.inf:
                    deadlines[j] = min(deadlines[j], int(strategy.period) - 1)
            else:
                return None
            if vec.shape[0] not in (1, num_episodes):
                raise ValueError(
                    "per-episode thresholds require one row per episode, got "
                    f"{vec.shape[0]} rows for batch size {num_episodes}"
                )
            vectors.append(vec)
        depth = max(vec.shape[1] for vec in vectors)
        table = np.empty((len(vectors), num_episodes, depth))
        for j, vec in enumerate(vectors):
            if vec.shape[1] < depth:
                vec = np.concatenate(
                    [vec, np.repeat(vec[:, -1:], depth - vec.shape[1], axis=1)], axis=1
                )
            table[j] = vec
        return table, deadlines
