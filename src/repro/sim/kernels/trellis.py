"""Prefix-memoized belief trellis for deterministic-policy evaluation.

Under a deterministic recovery strategy the belief ``b_t`` is a pure
function of the ``(action, observation)`` prefix since the last reset: every
episode that has seen the same observations since its last recovery (or
crash, or episode start) carries *exactly* the same belief, bit for bit,
because the recursion of Appendix A is deterministic.  The batch engine
therefore does not need to update ``B`` beliefs per step — it can maintain
one **trellis** of distinct prefixes per fleet node (the partis
``new_trellis`` idiom: memoize shared sub-paths across sequences) and track,
per episode, only an integer node id.

A trellis node stores the belief, its depth (``time_since_recovery``, since
only WAIT edges descend — every recovery or crash resets to the root), and
the strategy's decision at that node (with the BTR deadline already folded
in).  Children are discovered lazily: the first episode to extend a prefix
with a new observation computes the posterior once via
:func:`repro.core.belief._batch_two_state_posterior` (the bit-exact batched
update), and every later episode sharing the prefix reuses it with a single
integer gather.

:class:`CachedBeliefDynamics` is the solver-facing face of the same idea:
an exact memo table for ``tau(b, a, o)`` / ``P[o | b, a]`` evaluations,
used by :class:`~repro.solvers.pomdp.RecoveryPOMDP` and
:func:`~repro.core.belief.belief_transition_distribution` so that
backward-induction sweeps stop recomputing identical belief updates.
"""

from __future__ import annotations

import numpy as np

from ...core.strategies import (
    BeliefPeriodicStrategy,
    MultiThresholdStrategy,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
)
from ..strategies import BatchMultiThreshold, BatchStrategy, LoopedBatchStrategy

__all__ = ["BeliefTrellis", "CachedBeliefDynamics", "trellis_eligible"]

#: Scalar strategy classes that are pure functions of
#: ``(belief, time_since_recovery)`` — the precondition for sharing trellis
#: nodes across episodes.
_DETERMINISTIC_STRATEGIES = (
    ThresholdStrategy,
    MultiThresholdStrategy,
    NoRecoveryStrategy,
    PeriodicStrategy,
    BeliefPeriodicStrategy,
)


def trellis_eligible(strategy: BatchStrategy) -> bool:
    """Whether ``strategy`` may be evaluated through a shared belief trellis.

    Only strategies that are deterministic functions of
    ``(belief, time_since_recovery)`` qualify; per-episode threshold
    matrices (``BatchMultiThreshold`` with 2-D thresholds) and arbitrary
    wrapped policies (e.g. PPO) do not, because different episodes at the
    same trellis node could act differently.
    """
    if isinstance(strategy, BatchMultiThreshold):
        return strategy.thresholds.ndim == 1
    if isinstance(strategy, LoopedBatchStrategy):
        return isinstance(strategy.strategy, _DETERMINISTIC_STRATEGIES)
    return isinstance(strategy, _DETERMINISTIC_STRATEGIES)


class BeliefTrellis:
    """Growable trellis of distinct belief prefixes for one fleet node.

    Node ``0`` is the root (the post-reset belief at depth ``0``).  Only
    WAIT edges are stored — a recovery or a crash always returns to the
    root — so a node's depth equals ``time_since_recovery``.  All per-node
    attributes are flat arrays so the hot loop reads them with single
    ``take`` gathers:

    Attributes:
        beliefs: ``(capacity,)`` belief at each node.
        depths: ``(capacity,)`` time-since-recovery at each node.
        actions: ``(capacity,)`` strategy decision at each node, with the
            BTR deadline already OR-ed in.
        children: ``(capacity * num_observations,)`` child id per
            ``(node, observation)``, ``-1`` where undiscovered.
        size: Number of discovered nodes.
    """

    def __init__(
        self,
        root_belief: float,
        num_observations: int,
        max_nodes: int = 65536,
        initial_capacity: int = 256,
    ) -> None:
        if num_observations < 1:
            raise ValueError("num_observations must be >= 1")
        self.num_observations = int(num_observations)
        self.max_nodes = int(max_nodes)
        capacity = min(max(int(initial_capacity), 2), self.max_nodes)
        self._capacity = capacity
        self.beliefs = np.empty(capacity)
        self.depths = np.zeros(capacity, dtype=np.int64)
        self.actions = np.zeros(capacity, dtype=bool)
        self.children = np.full(capacity * self.num_observations, -1, dtype=np.int64)
        self.beliefs[0] = float(root_belief)
        self.size = 1

    def __len__(self) -> int:
        return self.size

    def reserve(self, extra: int) -> bool:
        """Ensure room for ``extra`` more nodes; ``False`` if over the cap."""
        need = self.size + extra
        if need > self.max_nodes:
            return False
        if need > self._capacity:
            new_capacity = min(self.max_nodes, max(2 * self._capacity, need))
            self.beliefs = np.resize(self.beliefs, new_capacity)
            self.depths = np.resize(self.depths, new_capacity)
            self.actions = np.resize(self.actions, new_capacity)
            children = np.full(new_capacity * self.num_observations, -1, dtype=np.int64)
            children[: self._capacity * self.num_observations] = self.children
            self.children = children
            self._capacity = new_capacity
        return True

    def add_children(
        self,
        edge_keys: np.ndarray,
        beliefs: np.ndarray,
        depths: np.ndarray,
        actions: np.ndarray,
    ) -> np.ndarray | None:
        """Append nodes for the given flat ``parent * |O| + obs`` edges.

        Returns the new node ids, or ``None`` when the capacity cap would be
        exceeded (the caller then materializes beliefs and abandons the
        trellis for the rest of the run).
        """
        count = len(edge_keys)
        if not self.reserve(count):
            return None
        ids = np.arange(self.size, self.size + count, dtype=np.int64)
        self.beliefs[ids] = beliefs
        self.depths[ids] = depths
        self.actions[ids] = actions
        self.children[edge_keys] = ids
        self.size += count
        return ids


class CachedBeliefDynamics:
    """Exact memo table for deterministic belief-dynamics evaluations.

    Belief updates and observation probabilities are pure functions of
    ``(belief, action, observation)``; backward-induction solvers evaluate
    them for the same grid beliefs over and over (every stage of a
    finite-horizon sweep revisits the full grid).  The memo returns the
    previously computed float — which is *exact*, not approximate, because
    identical double inputs produce identical doubles.

    The table is keyed by the raw float belief plus the discrete arguments;
    ``hits`` / ``misses`` counters make cache effectiveness observable.
    """

    def __init__(self) -> None:
        self._memo: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, key: tuple, compute):
        """Return the memoized value for ``key``, computing it on first use."""
        try:
            value = self._memo[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._memo[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        self._memo.clear()
        self.hits = 0
        self.misses = 0
