"""Selectable HMM-forward belief kernels for the batch engine.

Three backends implement the same kernel interface
(``make_step_workspace`` / ``update_beliefs`` / ``simulate``):

``reference``
    The node-by-node NumPy path of PRs 1-6.  Bit-exact against the scalar
    simulator; kept as the ground truth the fused kernels are measured
    against.

``fused`` (default)
    Precomputed per-``(node, action, observation)`` tables turn the belief
    update across all ``(B, N)`` streams into one flat gather plus a fused
    multiply-add — no per-node Python loop, no per-step matmul pair, no
    ``np.where`` over the recover mask.  Still bit-exact (the parity suites
    are the gate), including the degenerate-observation fallback.

``numba``
    Optional (``pip install .[kernels]``): the full fused step JITted into
    one nopython loop.  Not bit-exact — validated under the versioned
    :data:`~repro.sim.kernels.numba_backend.NUMBA_TOLERANCE_TIER` — and
    degrades gracefully to ``fused`` (with a warning) when numba is absent.

Selection precedence: explicit ``BatchRecoveryEngine(..., backend=...)``
argument, then the ``REPRO_ENGINE_BACKEND`` environment variable, then the
default.
"""

from __future__ import annotations

import os
import warnings

from .fused import FusedKernel
from .numba_backend import HAVE_NUMBA, NUMBA_TOLERANCE_TIER, NumbaKernel
from .profile import PHASES, EngineProfile
from .reference import ReferenceKernel
from .trellis import BeliefTrellis, CachedBeliefDynamics, trellis_eligible

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "HAVE_NUMBA",
    "NUMBA_TOLERANCE_TIER",
    "PHASES",
    "BeliefTrellis",
    "CachedBeliefDynamics",
    "EngineProfile",
    "FusedKernel",
    "NumbaKernel",
    "ReferenceKernel",
    "available_backends",
    "resolve_backend",
    "trellis_eligible",
]

#: Registry of kernel classes by backend name.
BACKENDS = {
    "reference": ReferenceKernel,
    "fused": FusedKernel,
    "numba": NumbaKernel,
}

DEFAULT_BACKEND = "fused"

#: Environment variable consulted when no explicit ``backend=`` is given.
ENV_VAR = "REPRO_ENGINE_BACKEND"


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this environment (numba only if installed)."""
    names = ["reference", "fused"]
    if HAVE_NUMBA:
        names.append("numba")
    return tuple(names)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend name: argument > ``REPRO_ENGINE_BACKEND`` > default.

    Requesting ``numba`` without numba installed warns and falls back to
    ``fused`` rather than failing — the optional dependency changes speed,
    not correctness.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}; expected one of {sorted(BACKENDS)}"
        )
    if name == "numba" and not HAVE_NUMBA:
        warnings.warn(
            "numba is not installed; falling back to the fused NumPy backend "
            "(pip install 'repro[kernels]' for the JIT backend)",
            RuntimeWarning,
            stacklevel=2,
        )
        return "fused"
    return name
