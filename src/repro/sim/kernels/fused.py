"""Fused NumPy backend: flat-table HMM-forward kernels, bit-exact.

The belief recursion of Appendix A is an HMM forward pass, and this module
applies the standard HMM-acceleration idiom (ham / partis lexical tables):
precompute per-``(node, action, observation)`` lookup tables at engine
construction so the per-step work collapses to flat integer gathers plus one
batched matrix product — no per-node Python loop, no per-step ``np.where``
over the recover mask, no per-step allocation.

Bit-exactness
-------------

The fused update must reproduce the reference path *bit for bit* (the
scalar parity suites are the gate), which rules out the naive elementwise
form ``(1 - b) * M[0, s] + b * M[1, s]``: BLAS evaluates the reference
``[1 - b, b, 0] @ M`` product as a fused-multiply-add chain whose rounding
differs from the two-rounding elementwise form in the last ulp.  Two
observations restore exactness:

* **Exact zeros are FMA no-ops.**  ``fma(0, m, acc) == acc`` and appending
  zero terms never changes an FMA chain.  The action select can therefore
  be folded *into the matmul*: with the 4-row matrix ``M4 = [W_H; W_C;
  R_H; R_C]`` (live-state rows of the wait/recover kernels) and the
  embedding ``[(1-b)(1-a), b(1-a), (1-b)a, ba]`` — which is exactly
  ``[1-b, b, 0, 0]`` or ``[0, 0, 1-b, b]`` — the product
  ``(B, 4) @ (4, 2)`` equals the reference per-action ``(B, 3) @ (3, 3)``
  product bitwise, eliminating both per-step matmuls and the recover-mask
  branch in one stroke.
* **Likelihoods stay separate.**  Pre-multiplying ``Z(o | s)`` into the
  transition columns (the textbook fused table) would change the rounding
  order, so the likelihoods are gathered from a flat ``(N * |O|,)`` table
  and applied after the product — the same two multiplies the scalar
  update performs.

Sampling uses exact CDF inversion: ``searchsorted(cdf, u, side="right")``
computes the same count as the reference ``(cdf <= u).sum()`` comparison
(pure comparisons, no arithmetic), and the transition draw needs only the
first two CDF columns because the third entry is exactly ``1.0 > u``.

The run driver additionally defers all bookkeeping (cost, recoveries,
compromises, delay windows, availability) to finalize time: it logs the raw
per-step states and recover masks (one ``uint8`` + one ``bool`` write per
step) and reconstructs everything exactly afterwards.  Integer sums are
order-independent, so the counters are a pure reordering; ``total_cost``,
float addition not being associative, is re-accumulated at finalize with an
explicit sequential loop over steps — the same element order as the eager
path, just outside the hot loop.  When all strategies are deterministic in
``(belief, time_since_recovery)`` *and* the observation alphabet is small
enough for prefixes to actually repeat, the driver switches to the
prefix-memoized :class:`~.trellis.BeliefTrellis` and replaces the
per-stream belief update with an integer gather.
"""

from __future__ import annotations

from time import perf_counter_ns

import numpy as np

from ...core.belief import _batch_two_state_posterior
from ...core.node_model import NodeAction, NodeState
from ...core.strategies import ThresholdStrategy
from .trellis import BeliefTrellis, trellis_eligible

__all__ = ["FusedKernel"]

_HEALTHY = int(NodeState.HEALTHY)
_COMPROMISED = int(NodeState.COMPROMISED)
_CRASHED = int(NodeState.CRASHED)
_WAIT = int(NodeAction.WAIT)
_RECOVER = int(NodeAction.RECOVER)

#: Default cap on trellis nodes per fleet node; beyond it the driver
#: materializes the beliefs and finishes the run on the table path.
_MAX_TRELLIS_NODES = 65536
#: Minimum batch size for the trellis to pay for its gathers.
_MIN_TRELLIS_BATCH = 16
#: Auto-enable the trellis only for observation alphabets up to this size.
#: With wide alphabets (e.g. BetaBinomial's 10 bins) WAIT chains keep
#: minting fresh ``(belief, depth)`` prefixes — measured ~40% steady-state
#: miss rate on the Table 2 workload — so discovery never stops paying and
#: the table path wins.  ``trellis=True`` still forces it on.
_MAX_TRELLIS_AUTO_OBS = 4
#: Fleet sizes up to this use the precomputed-rank transition/observation
#: path; larger fleets amortize one big row-gather better.
_MAX_RANK_NODES = 4
#: Episode-chunk size (in ``T * N * B`` elements) for the deferred metrics
#: pass, keeping its boolean temporaries around L2/L3-cache sized.
_METRICS_CHUNK_ELEMS = 1 << 22


class FusedKernel:
    """Flat-table fused backend (the default)."""

    name = "fused"
    #: Exactness contract: bit-exact against the scalar simulator.
    bit_exact = True

    def __init__(self, engine) -> None:
        self.engine = engine
        matrices = engine._matrices  # (N, |A|, |S|, |S|)
        num_nodes, num_actions, num_states, _ = matrices.shape
        if num_states != 3 or num_actions != 2:
            raise ValueError("fused kernels assume the 3-state, 2-action node POMDP")
        # (N, 4, 2): rows [W_H; W_C; R_H; R_C] of live-to-live transitions.
        m4 = np.empty((num_nodes, 4, 2))
        m4[:, 0:2, :] = matrices[:, _WAIT, 0:2, 0:2]
        m4[:, 2:4, :] = matrices[:, _RECOVER, 0:2, 0:2]
        self.m4 = np.ascontiguousarray(m4)
        # Transposed copy for the run driver's ``prior.T = M4.T @ emb.T``
        # formulation, which keeps every operand C-contiguous.
        self.m4t = np.ascontiguousarray(m4.transpose(0, 2, 1))
        pmf = engine._observation_pmf  # (N, |S|, |O|)
        self.num_observations = int(pmf.shape[2])
        # Flat likelihood tables, row (j * |O| + o) -> Z(o | s).
        self.like_healthy = np.ascontiguousarray(pmf[:, _HEALTHY, :]).reshape(-1)
        self.like_compromised = np.ascontiguousarray(pmf[:, _COMPROMISED, :]).reshape(-1)
        self.like_base = np.arange(num_nodes, dtype=np.int64) * self.num_observations
        # Transition CDF columns: next_state = (c0 <= u) + (c1 <= u) because
        # the third CDF entry is exactly 1.0 and u < 1 strictly.
        self.tc0 = np.ascontiguousarray(engine._transition_cdf_flat[:, 0])
        self.tc1 = np.ascontiguousarray(engine._transition_cdf_flat[:, 1])
        self._build_rank_tables(engine, pmf)
        self._build_transition_rank_tables(num_nodes, num_actions * num_states)
        #: uniforms-buffer -> precomputed rank arrays (see _uniform_ranks).
        self._rank_cache: dict = {}

    def _build_rank_tables(self, engine, pmf) -> None:
        """Merged-CDF observation rank tables for the run driver.

        One ``searchsorted`` against the sorted union of a node's healthy
        and compromised CDFs yields a *rank* from which both the observation
        index and both likelihoods follow by pure integer table lookups:
        ``rank = #{merged <= u}`` determines ``#{cdf_s <= u}`` exactly for
        either state ``s`` because every CDF value is itself a merged value
        — no float arithmetic touches ``u``, so exact inversion of both
        CDFs is preserved while paying for one binary search instead of two.
        Flat layout: entry ``rank_base[j] + s * rank_len[j] + rank``.
        """
        num_nodes = pmf.shape[0]
        obs_parts: list[np.ndarray] = []
        zh_parts: list[np.ndarray] = []
        zc_parts: list[np.ndarray] = []
        self._obs_merged: list[np.ndarray] = []
        rank_base = np.empty(num_nodes, dtype=np.int64)
        rank_len = np.empty(num_nodes, dtype=np.int64)
        base = 0
        for j in range(num_nodes):
            cdf_h = np.ascontiguousarray(engine._observation_cdf[j, _HEALTHY])
            cdf_c = np.ascontiguousarray(engine._observation_cdf[j, _COMPROMISED])
            merged = np.unique(np.concatenate([cdf_h, cdf_c]))
            omap = np.concatenate(
                [
                    [0],
                    np.searchsorted(cdf_h, merged, side="right"),
                    [0],
                    np.searchsorted(cdf_c, merged, side="right"),
                ]
            ).astype(np.int64)
            # Top ranks are unreachable (u < 1.0 <= merged[-1]); clip them
            # into range so the likelihood tables can be built.
            np.minimum(omap, self.num_observations - 1, out=omap)
            self._obs_merged.append(merged)
            obs_parts.append(omap)
            zh_parts.append(pmf[j, _HEALTHY][omap])
            zc_parts.append(pmf[j, _COMPROMISED][omap])
            rank_base[j] = base
            rank_len[j] = len(merged) + 1
            base += 2 * (len(merged) + 1)
        self._obs_tab = np.ascontiguousarray(np.concatenate(obs_parts))
        self._zh_tab = np.ascontiguousarray(np.concatenate(zh_parts))
        self._zc_tab = np.ascontiguousarray(np.concatenate(zc_parts))
        self._rank_base = rank_base
        self._rank_len = rank_len
        self._obs_bucket = [self._bucket_grid(m) for m in self._obs_merged]

    def _build_transition_rank_tables(self, num_nodes: int, num_rows: int) -> None:
        """Merged-CDF *transition* rank tables, mirroring the observation ones.

        ``next_state = (tc0 <= u) + (tc1 <= u)`` and both thresholds are
        members of the node's merged transition-CDF value set, so with
        ``r = #{merged <= u}`` the next state is the pure integer
        ``(k0 < r) + (k1 < r)`` where ``k0``/``k1`` are the thresholds'
        positions in the sorted merged set — no float compare against ``u``
        remains once ``r`` is known.  Flat layout: entry
        ``t_base[j] + (a * |S| + s) * t_len[j] + r``.
        """
        parts: list[np.ndarray] = []
        self._t_merged: list[np.ndarray] = []
        t_base = np.empty(num_nodes, dtype=np.int64)
        t_len = np.empty(num_nodes, dtype=np.int64)
        base = 0
        for j in range(num_nodes):
            lo = self.tc0[j * num_rows : (j + 1) * num_rows]
            hi = self.tc1[j * num_rows : (j + 1) * num_rows]
            merged = np.unique(np.concatenate([lo, hi]))
            width = len(merged) + 1
            k0 = np.searchsorted(merged, lo)
            k1 = np.searchsorted(merged, hi)
            ranks = np.arange(width, dtype=np.int64)
            tab = (k0[:, None] < ranks).astype(np.int64)
            tab += k1[:, None] < ranks
            parts.append(tab.reshape(-1))
            self._t_merged.append(merged)
            t_base[j] = base
            t_len[j] = width
            base += num_rows * width
        # uint8 so the gather can write straight into the state log rows.
        self._ns_tab = np.ascontiguousarray(np.concatenate(parts).astype(np.uint8))
        self._t_base = t_base
        self._t_len = t_len
        self._t_bucket = [self._bucket_grid(m) for m in self._t_merged]

    @staticmethod
    def _bucket_grid(merged: np.ndarray):
        """Branchless bucket-grid rank lookup over a sorted value set.

        ``x -> trunc(fl(x * K))`` is monotone, so for a grid of ``K``
        buckets over ``[0, 1]`` every value in a lower bucket than ``u`` is
        ``<= u`` and every value in a higher bucket is ``> u``; candidates
        sharing ``u``'s bucket are resolved by explicit compares.  Hence
        ``rank(u) = cnt[b] + sum_m (vals[m][b] <= u)`` exactly, with ``b =
        trunc(u * K)``, ``cnt[b]`` the number of values in buckets below
        ``b`` and ``vals[m][b]`` the ``m``-th value inside bucket ``b``
        (``+inf`` padded).  ``K`` is doubled until buckets are singly
        occupied (tables get length ``K + 1``: ``fl(u * K)`` can round up
        to ``K``); at the 65536 cap up to 4 values may share a bucket, and
        denser value sets fall back to ``searchsorted`` (``None``).
        """
        k = max(64, 2 * len(merged))
        while True:
            bucket_of = (merged * float(k)).astype(np.int64)
            occupancy = int(np.bincount(bucket_of, minlength=1).max())
            if occupancy <= 1 or k >= 65536:
                break
            k *= 2
        if occupancy > 4:
            return None
        cnt = np.searchsorted(bucket_of, np.arange(k + 1), side="left")
        vals = [np.full(k + 1, np.inf) for _ in range(occupancy)]
        for i, b in enumerate(bucket_of):
            vals[i - cnt[b]][b] = merged[i]
        return float(k), np.ascontiguousarray(cnt.astype(np.int64)), vals

    @staticmethod
    def _ranks_into(u: np.ndarray, merged: np.ndarray, bucket, out: np.ndarray) -> None:
        """Write ``rank(u) = #{merged <= u}`` elementwise into ``out``."""
        if bucket is None:
            out[...] = np.searchsorted(merged, u.ravel(), side="right").reshape(u.shape)
            return
        kf, cnt, vals = bucket
        idx = (u * kf).astype(np.int64)
        rank = cnt.take(idx)
        for val in vals:
            rank += val.take(idx) <= u
        out[...] = rank

    def _uniform_ranks(self, uniforms: np.ndarray) -> np.ndarray:
        """Precomputed CDF ranks for every uniform in the buffer, memoized.

        Per-step binary searches over *fresh* uniforms defeat the branch
        predictor (~5x the microbenchmarked cost), and even the branchless
        per-step bucket lookup pays ~7 kernel dispatches per step.  The
        uniforms buffer is known up front, so both the transition rank and
        the observation rank of **every** draw are computed here in a few
        full-buffer vectorized passes; the run loop then turns each phase
        into one integer gather.  Returns a flat ``int64`` view of a
        *step-major* array of shape ``(width, 2, N, B)`` — transition ranks
        of within-stream draw ``k`` in row ``(k, 0)``, observation ranks in
        ``(k, 1)``.  Lock-step streams therefore gather from two contiguous
        rows per step (sequential, cache-friendly); streams lagging after a
        crash peek read slightly older, still-resident rows.  Entries are
        keyed by buffer identity (the buffer is pinned by the cache entry,
        so the address cannot be recycled while the key lives) — the
        engine's seed-memoized uniforms hit this cache on every rerun.
        """
        key = uniforms.__array_interface__["data"][0]
        entry = self._rank_cache.get(key)
        if entry is not None and entry[0] is uniforms:
            return entry[1]
        num_episodes, num_nodes, width = uniforms.shape
        ranks = np.empty((width, 2, num_nodes, num_episodes), dtype=np.int64)
        for j in range(num_nodes):
            ut = uniforms[:, j, :].T
            self._ranks_into(ut, self._t_merged[j], self._t_bucket[j], ranks[:, 0, j])
            self._ranks_into(ut, self._obs_merged[j], self._obs_bucket[j], ranks[:, 1, j])
        flat = ranks.reshape(-1)
        if len(self._rank_cache) >= 4:
            self._rank_cache.pop(next(iter(self._rank_cache)))
        self._rank_cache[key] = (uniforms, flat)
        return flat

    # -- stepwise belief update --------------------------------------------------
    def make_step_workspace(self, num_episodes: int) -> dict:
        num_nodes = self.engine.scenario.num_nodes
        shape = (num_episodes, num_nodes)
        return {
            "emb": np.empty((num_nodes, 4, num_episodes)),
            "prior": np.empty((num_nodes, 2, num_episodes)),
            "obs_like": np.empty(shape, dtype=np.int64),
            "zh": np.empty(shape),
            "zc": np.empty(shape),
            "wh": np.empty(shape),
            "wc": np.empty(shape),
            "total": np.empty(shape),
            "ones": np.empty(shape),
            "updated": np.empty(shape),
        }

    def update_beliefs(
        self,
        recover: np.ndarray,
        observation_index: np.ndarray,
        belief: np.ndarray,
        workspace: dict | None = None,
    ) -> np.ndarray:
        """Fused Appendix A recursion over all ``(B, N)`` streams at once."""
        if workspace is None:
            workspace = self.make_step_workspace(belief.shape[0])
        emb = workspace["emb"]
        prior = workspace["prior"]
        self._embed(belief.T, recover.T, emb, prior)
        idx = workspace["obs_like"]
        np.add(observation_index, self.like_base, out=idx)
        zh = self.like_healthy.take(idx, out=workspace["zh"])
        zc = self.like_compromised.take(idx, out=workspace["zc"])
        return self._posterior(
            prior[:, 0].T,
            prior[:, 1].T,
            zh,
            zc,
            workspace["wh"],
            workspace["wc"],
            workspace["total"],
            workspace["ones"],
            workspace["updated"],
        )

    def _embed(
        self,
        belief: np.ndarray,
        recover: np.ndarray,
        emb: np.ndarray,
        prior: np.ndarray,
    ) -> None:
        """Fill ``emb`` with the action-folded embedding and run the matmul.

        ``belief`` / ``recover`` are node-major ``(N, B)``; ``emb`` is the
        transposed embedding ``(N, 4, B)`` and ``prior`` the transposed
        prediction ``(N, 2, B)`` — the matmul runs as ``M4.T @ emb`` so that
        every row the elementwise kernels touch is contiguous.  The
        embedding rows ``[(1-b)(1-a), b(1-a), (1-b)a, ba]`` are computed
        with exact arithmetic (``x - x == 0`` and ``x - 0 == x``), so each
        stream's column is exactly ``[1-b, b, 0, 0]`` (wait) or
        ``[0, 0, 1-b, b]`` (recover).
        """
        single = emb.ndim == 2  # flattened single-node views (4, B) / (2, B)
        if single:
            e0, e1, e2, e3 = emb
        else:
            e0 = emb[:, 0]
            e1 = emb[:, 1]
            e2 = emb[:, 2]
            e3 = emb[:, 3]
        np.subtract(1.0, belief, out=e0)
        np.multiply(e0, recover, out=e2)
        np.subtract(e0, e2, out=e0)
        np.multiply(belief, recover, out=e3)
        np.subtract(belief, e3, out=e1)
        if single:
            np.matmul(self.m4t[0], emb, out=prior)
        elif emb.shape[0] == 1:
            np.matmul(self.m4t[0], emb[0], out=prior[0])
        else:
            np.matmul(self.m4t, emb, out=prior)

    def _posterior(
        self,
        prior_healthy: np.ndarray,
        prior_compromised: np.ndarray,
        zh: np.ndarray,
        zc: np.ndarray,
        wh: np.ndarray,
        wc: np.ndarray,
        total: np.ndarray,
        ones: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """Bayes correction with the shared degenerate-observation fallback."""
        np.multiply(zh, prior_healthy, out=wh)
        np.multiply(zc, prior_compromised, out=wc)
        np.add(wh, wc, out=total)
        if self.engine._regular_observations or not (total <= 0.0).any():
            np.divide(wc, total, out=out)
            return out
        # Degenerate observation: drop it and renormalize the prediction
        # over the live states (b = 1 when even the live mass is zero) —
        # element for element the same operations as the reference path.
        live = wh  # the weight buffer is free to reuse here
        np.add(prior_healthy, prior_compromised, out=live)
        ones.fill(1.0)
        np.divide(prior_compromised, live, out=ones, where=live > 0.0)
        np.divide(wc, total, out=ones, where=total > 0.0)
        np.copyto(out, ones)
        return out

    # -- fused run driver --------------------------------------------------------
    def simulate(self, strategies, uniforms, profile=None, trellis=None):
        from ..engine import BatchSimulationResult  # deferred: package cycle

        engine = self.engine
        scenario = engine.scenario
        num_episodes, num_nodes, width = uniforms.shape
        horizon = scenario.horizon
        num_obs = self.num_observations
        if trellis is None:
            use_trellis = (
                num_episodes >= _MIN_TRELLIS_BATCH
                and num_obs <= _MAX_TRELLIS_AUTO_OBS
                and all(trellis_eligible(s) for s in strategies)
            )
        else:
            use_trellis = bool(trellis) and all(trellis_eligible(s) for s in strategies)
        if profile is not None:
            profile.backend = self.name + ("+trellis" if use_trellis else "")

        B, N = num_episodes, num_nodes
        flat = uniforms.reshape(-1)
        # Node-major (N, B) layout: per-node slices are contiguous rows.
        # ``idx2[0]`` / ``idx2[1]`` are the absolute flat indices of each
        # stream's transition and observation uniforms — maintained
        # incrementally and consumed by one paired gather per step.
        idx2 = np.empty((2, N, B), dtype=np.int64)
        idx2[0] = (
            np.arange(N, dtype=np.int64)[:, None]
            + np.arange(B, dtype=np.int64)[None, :] * N
        ) * width
        idx2[1] = idx2[0] + 1
        state = np.zeros((N, B), dtype=np.int64)
        belief = np.empty((N, B))
        belief[:] = engine._initial_belief[:, None]
        tsr = np.zeros((N, B), dtype=np.int64)
        init_col = engine._initial_belief[:, None]
        deadline_col = engine._btr_deadline[:, None]
        tbase_col = engine._transition_node_base[:, None]
        like_base_col = self.like_base[:, None]

        # Deferred-metrics logs: everything integer is reconstructed from
        # these at finalize time.
        log_state = np.empty((horizon, N, B), dtype=np.uint8)
        log_recover = np.empty((horizon, N, B), dtype=bool)

        # Step buffers (allocated once per run).
        forced = np.empty((N, B), dtype=bool)
        ibuf = np.empty((N, B), dtype=np.int64)
        alive = np.empty((N, B), dtype=bool)
        reset = np.empty((N, B), dtype=bool)
        obs = np.empty((N, B), dtype=np.int64)
        emb = np.empty((N, 4, B))
        prior = np.empty((N, 2, B))
        zh = np.empty((N, B))
        zc = np.empty((N, B))
        wh = np.empty((N, B))
        wc = np.empty((N, B))
        total = np.empty((N, B))
        ones = np.empty((N, B))
        use_rank = N <= _MAX_RANK_NODES
        if use_rank:
            # Precomputed per-uniform CDF ranks (memoized per buffer) in
            # step-major rows: a stream at within-stream draw ``k`` reads
            # its transition rank at flat ``k * 2NB + jb`` and its
            # observation rank (draw ``k + 1``) at ``+ 3NB``, so lock-step
            # streams gather from contiguous rows.  The sampled state is
            # gathered straight into this step's state-log row.
            ranks2 = self._uniform_ranks(uniforms)
            nb = N * B
            idx2[0] = (
                np.arange(N, dtype=np.int64)[:, None] * B
                + np.arange(B, dtype=np.int64)[None, :]
            )
            idx2[1] = idx2[0] + 3 * nb
            iuu = np.empty((2, N, B), dtype=np.int64)
            state = np.zeros((N, B), dtype=np.uint8)
            ns_live = np.empty((N, B), dtype=np.uint8)
            rank_len_col = self._rank_len[:, None]
            rank_base_col = self._rank_base[:, None]
            t_len_col = self._t_len[:, None]
            t_base_col = self._t_base[:, None]
        else:
            ns = np.empty((N, B), dtype=np.int64)
            uu = np.empty((2, N, B))
            u = uu[0]
            u2 = uu[1]
            g = np.empty((N, B))
            c1 = np.empty((N, B), dtype=np.int64)
            c2 = np.empty((N, B), dtype=np.int64)
            obs_rows = np.empty((N, B, num_obs))
            obs_cmp = np.empty((N, B, num_obs), dtype=bool)
            obase_col = engine._observation_node_base[:, None]

        # Plain threshold strategies collapse the whole strategy phase to a
        # single broadcast compare (same `belief >= alpha` semantics).
        fast_thresholds = None
        if all(type(s) is ThresholdStrategy for s in strategies):
            fast_thresholds = np.array([s.alpha for s in strategies])[:, None]

        # Single-node fast path: rebind every per-step operand to a 1-D
        # ``(B,)`` view (same memory, same arithmetic) and the per-node
        # columns to scalars — less shape/broadcast machinery on each of
        # the ~30 kernel dispatches per step.
        flat1 = use_rank and N == 1
        if flat1:
            belief = belief.reshape(B)
            tsr = tsr.reshape(B)
            state = state.reshape(B)
            ns_live = ns_live.reshape(B)
            forced = forced.reshape(B)
            ibuf = ibuf.reshape(B)
            alive = alive.reshape(B)
            reset = reset.reshape(B)
            obs = obs.reshape(B)
            zh = zh.reshape(B)
            zc = zc.reshape(B)
            wh = wh.reshape(B)
            wc = wc.reshape(B)
            total = total.reshape(B)
            ones = ones.reshape(B)
            emb = emb.reshape(4, B)
            prior = prior.reshape(2, B)
            iuu = iuu.reshape(2, B)
            idx2 = idx2.reshape(2, B)
            init_col = float(engine._initial_belief[0])
            deadline_col = engine._btr_deadline[0]
            rank_len_col = self._rank_len[0]
            t_len_col = self._t_len[0]
            if fast_thresholds is not None:
                fast_thresholds = float(strategies[0].alpha)
            log_state_rows = log_state.reshape(horizon, B)
            log_recover_rows = log_recover.reshape(horizon, B)
        else:
            log_state_rows = log_state
            log_recover_rows = log_recover
        prior_h = prior[0] if flat1 else prior[:, 0]
        prior_c = prior[1] if flat1 else prior[:, 1]

        trellises: list[BeliefTrellis] = []
        if use_trellis:
            tshape = (B,) if flat1 else (N, B)
            ids = np.zeros(tshape, dtype=np.int64)
            key = np.empty(tshape, dtype=np.int64)
            child = np.empty(tshape, dtype=np.int64)
            for j in range(N):
                tr = BeliefTrellis(
                    engine._initial_belief[j], num_obs, max_nodes=_MAX_TRELLIS_NODES
                )
                root_act = bool(
                    np.asarray(
                        strategies[j].action_batch(
                            np.array([engine._initial_belief[j]]),
                            np.zeros(1, dtype=np.int64),
                        )
                    )[0]
                ) or bool(engine._btr_deadline[j] <= 0)
                tr.actions[0] = root_act
                trellises.append(tr)

        prof = profile
        for t in range(horizon):
            # -- strategy phase -------------------------------------------------
            if prof is not None:
                t0 = perf_counter_ns()
            # The recover mask is written straight into its log row (the
            # deferred-metrics log doubles as the step buffer).
            act = log_recover_rows[t]
            if use_trellis:
                if flat1:
                    np.take(trellises[0].actions, ids, out=act)
                else:
                    for j in range(N):
                        np.take(trellises[j].actions, ids[j], out=act[j])
            else:
                if fast_thresholds is not None:
                    np.greater_equal(belief, fast_thresholds, out=act)
                elif flat1:
                    act[...] = strategies[0].action_batch(belief, tsr)
                else:
                    for j, strategy in enumerate(strategies):
                        act[j] = strategy.action_batch(belief[j], tsr[j])
                np.greater_equal(tsr, deadline_col, out=forced)
                np.logical_or(act, forced, out=act)
            if prof is not None:
                t1 = perf_counter_ns()
                prof.add("strategy", t1 - t0)
                t0 = t1

            # -- hidden-state transition ----------------------------------------
            np.multiply(act, 3, out=ibuf)
            np.add(ibuf, state, out=ibuf)
            if use_rank:
                # One paired gather pulls the precomputed transition and
                # observation ranks; the next state is a pure table read,
                # gathered directly into the state log.
                ranks2.take(idx2, out=iuu)
                np.multiply(ibuf, t_len_col, out=ibuf)
                if N > 1:
                    np.add(ibuf, t_base_col, out=ibuf)
                np.add(ibuf, iuu[0], out=ibuf)
                ns = log_state_rows[t]
                self._ns_tab.take(ibuf, out=ns)
                crash_any = bool(ns.max() >= _CRASHED)
            else:
                flat.take(idx2, out=uu)
                if N > 1:
                    np.add(ibuf, tbase_col, out=ibuf)
                self.tc0.take(ibuf, out=g)
                np.less_equal(g, u, out=c1)
                self.tc1.take(ibuf, out=g)
                np.less_equal(g, u, out=c2)
                np.add(c1, c2, out=ns)
                # c2 counts the second CDF column: nonzero iff a crash.
                crash_any = bool(c2.any())
                log_state[t] = ns
            if crash_any:
                np.greater_equal(ns, _CRASHED, out=reset)  # crashed streams ...
                np.logical_or(reset, act, out=reset)  # ... + recovers reset belief
                np.less(ns, _CRASHED, out=alive)
                if use_rank:
                    # Zero crashes outside the log row, which keeps raw states.
                    np.multiply(ns, alive, out=ns_live)
                    ns = ns_live
                else:
                    np.multiply(ns, alive, out=ns)  # crashed -> fresh healthy
            else:
                np.copyto(reset, act)
            if prof is not None:
                t1 = perf_counter_ns()
                prof.add("transition_sample", t1 - t0)
                t0 = t1

            # -- observation draw (crashed streams peek but do not consume) -----
            if use_rank:
                if crash_any:
                    # Advance 2 draws (rows), minus the crashed streams'
                    # unconsumed observation peek.
                    np.multiply(alive, 2 * nb, out=ibuf)
                    np.add(idx2[0], ibuf, out=idx2[0])
                    np.add(idx2[0], 2 * nb, out=idx2[0])
                    np.add(idx2[0], 3 * nb, out=idx2[1])
                else:
                    np.add(idx2, 4 * nb, out=idx2)
                # The gathered rank plus the live state (0/1, crashed
                # already zeroed) indexes the observation/likelihood tables.
                np.multiply(ns, rank_len_col, out=ibuf)
                if N > 1:
                    np.add(ibuf, rank_base_col, out=ibuf)
                np.add(ibuf, iuu[1], out=ibuf)
                if use_trellis:
                    self._obs_tab.take(ibuf, out=obs)
            else:
                if crash_any:
                    np.add(idx2[1], alive, out=idx2[0])
                else:
                    np.add(idx2[1], 1, out=idx2[0])
                np.add(idx2[0], 1, out=idx2[1])
                np.add(obase_col, ns, out=ibuf)
                np.take(engine._observation_cdf_flat, ibuf, axis=0, out=obs_rows)
                np.less_equal(obs_rows, u2[..., None], out=obs_cmp)
                np.sum(obs_cmp, axis=2, out=obs)
            if prof is not None:
                t1 = perf_counter_ns()
                prof.add("observation_draw", t1 - t0)
                t0 = t1

            # -- belief advance -------------------------------------------------
            if use_trellis:
                np.multiply(ids, num_obs, out=key)
                np.add(key, obs, out=key)
                if flat1:
                    np.take(trellises[0].children, key, out=child)
                else:
                    for j in range(N):
                        np.take(trellises[j].children, key[j], out=child[j])
                np.copyto(child, 0, where=reset)
                if (child < 0).any():
                    discovered = (
                        self._discover(
                            trellises, strategies, key[None], child[None], reset[None]
                        )
                        if flat1
                        else self._discover(trellises, strategies, key, child, reset)
                    )
                    if discovered:
                        ids, child = child, ids
                    else:
                        # Capacity cap hit: materialize and finish the run
                        # on the table path (bit-identical either way).
                        if flat1:
                            np.take(trellises[0].beliefs, ids, out=belief)
                            np.take(trellises[0].depths, ids, out=tsr)
                        else:
                            for j in range(N):
                                np.take(trellises[j].beliefs, ids[j], out=belief[j])
                                np.take(trellises[j].depths, ids[j], out=tsr[j])
                        use_trellis = False
                        if prof is not None:
                            prof.backend = self.name
                else:
                    ids, child = child, ids
            if not use_trellis:
                self._embed(belief, act, emb, prior)
                if use_rank:
                    self._zh_tab.take(ibuf, out=zh)
                    self._zc_tab.take(ibuf, out=zc)
                else:
                    idx = obs
                    if N > 1:
                        np.add(obs, like_base_col, out=ibuf)
                        idx = ibuf
                    self.like_healthy.take(idx, out=zh)
                    self.like_compromised.take(idx, out=zc)
                self._posterior(
                    prior_h, prior_c, zh, zc, wh, wc, total, ones, belief
                )
                np.copyto(belief, init_col, where=reset)
                np.add(tsr, 1, out=tsr)
                np.copyto(tsr, 0, where=reset)
            if prof is not None:
                t1 = perf_counter_ns()
                prof.add("belief_update", t1 - t0)
                t0 = t1

            if use_rank:
                # ``ns`` is the log row (or the crash-zeroed copy) — next
                # step reads it in place, no swap buffer needed.
                state = ns
            else:
                state, ns = ns, state
            if prof is not None:
                prof.steps += 1

        if prof is not None:
            t0 = perf_counter_ns()
        metrics = _metrics_from_logs(log_state, log_recover, scenario.f, engine._eta)
        if prof is not None:
            prof.add("bookkeeping", perf_counter_ns() - t0)
        total_cost = metrics["total_cost"]
        delay_sum = metrics["delay_sum"]
        delay_count = metrics["delay_count"]
        time_to_recovery = np.divide(
            delay_sum,
            delay_count,
            out=np.zeros((N, B)),
            where=delay_count > 0,
        )
        return BatchSimulationResult(
            average_cost=total_cost.T / horizon,
            time_to_recovery=time_to_recovery.T,
            recovery_frequency=metrics["recoveries"].T / horizon,
            num_recoveries=metrics["recoveries"].T,
            num_compromises=metrics["compromises"].T,
            steps=horizon,
            availability=(
                metrics["available"] / horizon if metrics["available"] is not None else None
            ),
        )

    def _discover(
        self,
        trellises: list[BeliefTrellis],
        strategies,
        key: np.ndarray,
        child: np.ndarray,
        reset: np.ndarray,
    ) -> bool:
        """Materialize the missing trellis children referenced by ``key``.

        Posteriors are computed once per distinct ``(parent, observation)``
        edge with the same bit-exact batched update the table path uses.
        Returns ``False`` when a trellis would exceed its node cap.
        """
        engine = self.engine
        num_obs = self.num_observations
        for j, tr in enumerate(trellises):
            cj = child[j]
            missing = cj < 0
            if not missing.any():
                continue
            edges = np.unique(key[j][missing])
            parents = edges // num_obs
            obs_u = edges % num_obs
            pmf = engine._observation_pmf[j]
            wait_matrix = engine._matrices[j, _WAIT]
            beliefs = _batch_two_state_posterior(
                tr.beliefs[parents],
                np.zeros(len(edges), dtype=bool),
                pmf[_HEALTHY][obs_u],
                pmf[_COMPROMISED][obs_u],
                wait_matrix,
                wait_matrix,
                assume_regular=engine._regular_observations,
            )
            depths = tr.depths[parents] + 1
            actions = np.asarray(
                strategies[j].action_batch(beliefs, depths), dtype=bool
            ) | (depths >= engine._btr_deadline[j])
            if tr.add_children(edges, beliefs, depths, actions) is None:
                return False
            np.take(tr.children, key[j], out=cj)
            np.copyto(cj, 0, where=reset[j])
        return True


def _metrics_from_logs(
    log_state: np.ndarray,
    log_recover: np.ndarray,
    f: int | None,
    eta: np.ndarray,
) -> dict:
    """Reconstruct the episode metrics (cost included) from per-step logs.

    Exactly reproduces the eager per-step bookkeeping of
    :meth:`BatchRecoveryEngine.step` (including end-of-episode censoring of
    unresolved compromises), processed in episode chunks so the boolean
    temporaries stay cache-sized.  A compromise window opens at a
    healthy/crash-replaced ``-> C`` transition and closes on recover, crash
    or software-update restoration; the open flag follows the recurrence
    ``open_t = new_comp_t | (open_{t-1} & ~close_t)``, a window's delay
    contribution is the number of steps it stayed open (which makes
    end-of-episode censoring automatic), and every opened window resolves or
    is censored exactly once, so the window count equals the number of
    openings.  ``total_cost`` — the one float metric — takes per-step values
    in ``{0, 1, eta}``; when every ``eta`` is integer-valued (the paper
    default ``eta = 2``) all partial sums are exact small integers and the
    reduction order is free, otherwise the accumulation replays the eager
    step order so float non-associativity cannot shift the result.
    """
    horizon, num_nodes, num_episodes = log_state.shape
    shape = (num_nodes, num_episodes)
    recoveries = np.empty(shape, dtype=np.int64)
    compromises = np.empty(shape, dtype=np.int64)
    delay_sum = np.empty(shape, dtype=np.int64)
    total_cost = np.empty(shape)
    available = np.empty(num_episodes, dtype=np.int64) if f is not None else None
    eta_col = eta[:, None]
    # With integer eta every step cost is a small integer, so float sums of
    # them are exact in any order and the cost reduction can be vectorized;
    # otherwise the accumulation must replay the eager step order.
    int_eta = bool(np.all(eta == np.rint(eta)))
    step = max(1, _METRICS_CHUNK_ELEMS // max(1, horizon * num_nodes))
    for b0 in range(0, num_episodes, step):
        s = slice(b0, min(b0 + step, num_episodes))
        width = s.stop - s.start
        ns = log_state[:, :, s]
        rec = log_recover[:, :, s]
        is_c = ns == _COMPROMISED
        recoveries[:, s] = rec.sum(axis=0, dtype=np.int64)
        new_comp = np.empty_like(is_c)
        new_comp[0] = is_c[0]
        np.logical_and(is_c[1:], np.logical_not(is_c[:-1]), out=new_comp[1:])
        compromises[:, s] = new_comp.sum(axis=0, dtype=np.int64)
        # still == ~close: the window survives iff compromised and no recover.
        still = np.logical_and(is_c, np.logical_not(rec))
        if int_eta:
            # The state *entering* step t is ns[t - 1] with crashes replaced
            # by fresh healthy nodes: compromised exactly when is_c[t - 1].
            cost = np.zeros(is_c.shape)
            np.multiply(is_c[:-1], eta_col, out=cost[1:])
            np.copyto(cost, 1.0, where=rec)
            total_cost[:, s] = cost.sum(axis=0)
        else:
            acc = np.zeros((num_nodes, width))
            cost_t = np.empty((num_nodes, width))
            prev = np.zeros((num_nodes, width), dtype=bool)
            for t in range(horizon):
                np.multiply(prev, eta_col, out=cost_t)
                np.copyto(cost_t, 1.0, where=rec[t])
                np.add(acc, cost_t, out=acc)
                prev = is_c[t]
            total_cost[:, s] = acc
        # Sequential open-window recurrence: open_t = new_t | (open_{t-1} &
        # still_t).  The delay sum counts one step per open window per step
        # (end-of-episode censoring included for free), and the window count
        # equals the number of window openings, i.e. ``compromises``.
        open_ = np.zeros((num_nodes, width), dtype=bool)
        dsum = np.zeros((num_nodes, width), dtype=np.int64)
        for t in range(horizon):
            np.logical_and(open_, still[t], out=open_)
            np.logical_or(open_, new_comp[t], out=open_)
            np.add(dsum, open_, out=dsum)
        delay_sum[:, s] = dsum
        if available is not None:
            failed = np.logical_or(is_c, ns == _CRASHED)
            available[s] = (failed.sum(axis=1) <= f).sum(axis=0)
    return {
        "recoveries": recoveries,
        "compromises": compromises,
        "delay_sum": delay_sum.astype(float),
        "delay_count": compromises.copy(),
        "total_cost": total_cost,
        "available": available,
    }
