"""Per-phase wall-clock accounting for the batch engine.

:class:`EngineProfile` accumulates cumulative nanoseconds per simulation
phase so that kernel regressions are attributable: when a backend change
slows the Table 2/7 evaluation down, the profile says whether the time went
into transition sampling, observation draws, the belief update, or the
bookkeeping around them.

Profiles are opt-in (``BatchRecoveryEngine.begin(..., profile=True)`` or
``run(..., profile=True)``) because the timer calls themselves cost a few
hundred nanoseconds per step; the hot loop stays timer-free when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineProfile", "PHASES"]

#: Canonical phase names, in simulation order.  Backends may add phases of
#: their own (the trellis driver does), but these four are always present.
PHASES = (
    "strategy",
    "transition_sample",
    "observation_draw",
    "belief_update",
    "bookkeeping",
)


@dataclass
class EngineProfile:
    """Cumulative per-phase nanoseconds of one (or several) engine runs.

    Profiles are plain data and travel across process boundaries: the
    sharded sweeps of :mod:`repro.control.parallel` fill one profile per
    worker shard, pickle it back to the parent, and join the shards with
    :meth:`merge`.  Every accumulated total is coerced to a built-in
    ``int`` (timer deltas may arrive as NumPy integers), so a pickling
    round-trip reproduces the profile exactly.

    Attributes:
        nanos: Phase name -> cumulative nanoseconds.
        steps: Number of engine steps accounted for.
        backend: Name of the backend that filled the profile (informational).
    """

    nanos: dict[str, int] = field(default_factory=lambda: {p: 0 for p in PHASES})
    steps: int = 0
    backend: str = ""

    def add(self, phase: str, ns: int) -> None:
        self.nanos[phase] = int(self.nanos.get(phase, 0)) + int(ns)

    @classmethod
    def merge(cls, *profiles: "EngineProfile | None") -> "EngineProfile":
        """Join per-shard profiles into one cumulative profile.

        Sums the per-phase nanosecond totals and step counts of every
        non-``None`` input (``None`` entries — shards run without
        profiling — are skipped).  Non-canonical phases contributed by a
        backend (e.g. the trellis driver) are preserved; the backend name
        is taken from the first profile that set one.  The merge of zero
        profiles is an empty profile.
        """
        merged = cls()
        for profile in profiles:
            if profile is None:
                continue
            for phase, ns in profile.nanos.items():
                merged.add(phase, ns)
            merged.steps += int(profile.steps)
            if not merged.backend and profile.backend:
                merged.backend = profile.backend
        return merged

    @property
    def total_ns(self) -> int:
        return sum(self.nanos.values())

    def rows(self) -> list[tuple[str, float, float]]:
        """``(phase, milliseconds, share)`` rows, largest first."""
        total = self.total_ns or 1
        return sorted(
            ((name, ns / 1e6, ns / total) for name, ns in self.nanos.items() if ns),
            key=lambda row: -row[1],
        )

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        head = f"EngineProfile(backend={self.backend or '?'}, steps={self.steps})"
        body = "".join(
            f"\n  {name:<20} {ms:9.3f} ms  {share:6.1%}" for name, ms, share in self.rows()
        )
        return head + body
