"""Reference NumPy backend: the node-by-node engine path of PRs 1-6.

This backend is the obviously-correct vectorized implementation the fused
kernels are measured against: the belief update loops over fleet nodes and
calls :func:`repro.core.belief._batch_two_state_posterior` per node (two
``(B, 3) @ (3, 3)`` products plus a ``where`` over the recover mask), and
the run driver simply applies the strategies and calls
:meth:`~repro.sim.engine.BatchRecoveryEngine.step` once per horizon step.
It stays bit-exact against the scalar simulator, and the fused backend is
required to match it bit for bit in turn.
"""

from __future__ import annotations

from time import perf_counter_ns

import numpy as np

from ...core.belief import _batch_two_state_posterior
from ...core.node_model import NodeAction, NodeState

__all__ = ["ReferenceKernel"]

_HEALTHY = int(NodeState.HEALTHY)
_COMPROMISED = int(NodeState.COMPROMISED)


class ReferenceKernel:
    """Per-node-loop backend (the pre-kernel engine behaviour)."""

    name = "reference"
    #: Exactness contract: bit-exact against the scalar simulator.
    bit_exact = True

    def __init__(self, engine) -> None:
        self.engine = engine

    # -- stepwise belief update --------------------------------------------------
    def make_step_workspace(self, num_episodes: int) -> dict:
        """Reusable per-batch buffers for :meth:`update_beliefs`."""
        return {
            "embedded": np.zeros((num_episodes, 3)),
            "prior_wait": np.empty((num_episodes, 3)),
            "prior_recover": np.empty((num_episodes, 3)),
            "ones": np.empty(num_episodes),
            "updated": None,  # lazily shaped (B, N) on the multi-node path
        }

    def update_beliefs(
        self,
        recover: np.ndarray,
        observation_index: np.ndarray,
        belief: np.ndarray,
        workspace: dict | None = None,
    ) -> np.ndarray:
        """Batched Appendix A recursion, node by node (shared matrices)."""
        engine = self.engine
        regular = engine._regular_observations
        if engine.scenario.num_nodes == 1:
            likelihoods = engine._observation_pmf[0]  # (|S|, |O|)
            obs = observation_index[:, 0]
            posterior = _batch_two_state_posterior(
                belief[:, 0],
                recover[:, 0],
                likelihoods[_HEALTHY][obs],
                likelihoods[_COMPROMISED][obs],
                engine._matrices[0, int(NodeAction.WAIT)],
                engine._matrices[0, int(NodeAction.RECOVER)],
                workspace=workspace,
                assume_regular=regular,
            )
            return posterior.reshape(-1, 1)
        if workspace is not None and workspace.get("updated") is not None:
            updated = workspace["updated"]
        else:
            updated = np.empty_like(belief)
            if workspace is not None:
                workspace["updated"] = updated
        for j in range(engine.scenario.num_nodes):
            likelihoods = engine._observation_pmf[j]  # (|S|, |O|)
            obs = observation_index[:, j]
            updated[:, j] = _batch_two_state_posterior(
                belief[:, j],
                recover[:, j],
                likelihoods[_HEALTHY][obs],
                likelihoods[_COMPROMISED][obs],
                engine._matrices[j, int(NodeAction.WAIT)],
                engine._matrices[j, int(NodeAction.RECOVER)],
                workspace=workspace,
                assume_regular=regular,
            )
        return updated

    # -- run driver --------------------------------------------------------------
    def simulate(self, strategies, uniforms, profile=None, trellis=None):
        """Step-loop driver: one strategy application + one step per round."""
        del trellis  # the reference path has no trellis
        engine = self.engine
        sim = engine._begin(uniforms)
        sim.profile = profile
        if profile is not None:
            profile.backend = self.name
        shape = sim.state.shape
        recover = np.empty(shape, dtype=bool)
        for _ in range(engine.scenario.horizon):
            if profile is not None:
                t0 = perf_counter_ns()
            for j, strategy in enumerate(strategies):
                recover[:, j] = strategy.action_batch(
                    sim.belief[:, j], sim.time_since_recovery[:, j]
                )
            if profile is not None:
                profile.add("strategy", perf_counter_ns() - t0)
            engine.step(sim, recover)
        return engine.finalize(sim)
