"""Vectorized batch simulation of the node POMDP (Problem 1).

:class:`BatchRecoveryEngine` advances ``B`` episodes x ``N`` nodes
simultaneously as NumPy array operations: batched hidden-state transitions
(``f_N``), batched observation sampling from ``Z``, the batched two-state
belief recursion of Appendix A, batched strategy application, and batched
cost/metric accumulation.  All per-episode state is held in arrays of shape
``(B, N)`` (episodes are rows, nodes are columns).

Exactness
---------

The engine is not merely statistically equivalent to the scalar
:class:`~repro.solvers.evaluation.RecoverySimulator` -- it is **bit-exact**
per episode.  Three properties make that possible:

1. *Counter-free randomness.*  Each ``(episode, node)`` pair draws its
   uniforms from an independent child of ``numpy.random.SeedSequence(seed)``
   (episode-major order), the same streams the scalar simulator consumes
   when run one episode at a time.  The uniforms are pre-generated into a
   ``(B, N, 2 * horizon)`` buffer and consumed through a per-stream cursor,
   so the skip-on-crash draw pattern of the scalar loop is reproduced.
2. *Exact categorical inversion.*  ``Generator.choice(n, p)`` internally
   inverts the CDF ``p.cumsum() / p.cumsum()[-1]`` on one uniform double;
   the engine precomputes the same CDFs
   (:meth:`~repro.core.node_model.NodeTransitionModel.sampling_cdf`,
   :meth:`~repro.core.observation.ObservationModel.sampling_cdf`) and
   inverts them with vectorized comparisons.
3. *Bit-compatible belief updates.*  The batched prediction step evaluates
   the same ``vector @ matrix`` product as the scalar update (see
   :func:`repro.core.belief._batch_two_state_posterior`), whose rounding
   matches the scalar BLAS path bit for bit.

``tests/test_sim_equivalence.py`` asserts the resulting exact parity for
every strategy class.

Backends
--------

The belief kernels and the closed run loop live behind a selectable backend
(:mod:`repro.sim.kernels`): ``fused`` (default) runs the whole update as
flat gathers plus one fused multiply-add and memoizes belief prefixes in a
trellis for deterministic strategies, ``reference`` is the node-by-node
path of PRs 1-6, and ``numba`` (optional, ``pip install .[kernels]``) JITs
the full step loop.  ``reference`` and ``fused`` are both bit-exact; the
``numba`` backend is validated under a versioned tolerance tier.  Select
with ``BatchRecoveryEngine(scenario, backend=...)`` or the
``REPRO_ENGINE_BACKEND`` environment variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter_ns
from typing import Sequence

import numpy as np

from ..core.metrics import summarize_metric_arrays
from ..core.node_model import NodeState
from ..core.strategies import RecoveryStrategy
from .adversary import (
    StaticAdversary,
    draw_adversary_uniforms as _draw_adversary_uniforms,
    resolve_adversary_entropy,
)
from .kernels import BACKENDS, EngineProfile, resolve_backend
from .scenario import FleetScenario
from .strategies import BatchMultiThreshold, BatchStrategy, as_batch_strategy

__all__ = ["BatchEpisodeState", "BatchSimulationResult", "BatchRecoveryEngine"]

_HEALTHY = int(NodeState.HEALTHY)
_COMPROMISED = int(NodeState.COMPROMISED)
_CRASHED = int(NodeState.CRASHED)

# Memo of seeded uniform buffers keyed (seed, B, N, width); the arrays are
# marked read-only before caching.  FIFO-bounded, and very large buffers are
# never cached so the memo cannot pin hundreds of megabytes.
_UNIFORM_CACHE: dict[tuple, np.ndarray] = {}
_UNIFORM_CACHE_MAX_ENTRIES = 8
_UNIFORM_CACHE_MAX_ELEMENTS = 8_000_000  # 64 MB of float64 per entry


@dataclass(frozen=True)
class BatchSimulationResult:
    """Per-episode, per-node statistics of one batch simulation.

    Every array has shape ``(B, N)``; the fields mirror
    :class:`~repro.solvers.evaluation.RecoveryEpisodeResult` entry by entry.

    Attributes:
        average_cost: Per-episode average cost ``J_i`` (Eq. 5 estimator).
        time_to_recovery: Mean steps from compromise to recovery start.
        recovery_frequency: Fraction of steps with a recovery action.
        num_recoveries: Recovery-action counts.
        num_compromises: Compromise-event counts.
        steps: Episode length (the scenario horizon).
        availability: Per-episode fleet availability ``T^(A)`` of shape
            ``(B,)`` when the scenario defines a tolerance threshold ``f``,
            else ``None``.
        profile: Per-phase wall-clock accounting of the run, when it was
            requested with ``run(..., profile=True)``; else ``None``.
    """

    average_cost: np.ndarray
    time_to_recovery: np.ndarray
    recovery_frequency: np.ndarray
    num_recoveries: np.ndarray
    num_compromises: np.ndarray
    steps: int
    availability: np.ndarray | None = None
    profile: EngineProfile | None = None

    @property
    def num_episodes(self) -> int:
        return int(self.average_cost.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.average_cost.shape[1])

    def episode_results(self, node: int = 0) -> list:
        """Per-episode scalar results for one node, in episode order.

        Returns :class:`~repro.solvers.evaluation.RecoveryEpisodeResult`
        objects identical to what the scalar simulator produces for the same
        seed (imported lazily to avoid a package cycle).
        """
        from ..solvers.evaluation import RecoveryEpisodeResult

        return [
            RecoveryEpisodeResult(
                average_cost=float(self.average_cost[b, node]),
                time_to_recovery=float(self.time_to_recovery[b, node]),
                recovery_frequency=float(self.recovery_frequency[b, node]),
                num_recoveries=int(self.num_recoveries[b, node]),
                num_compromises=int(self.num_compromises[b, node]),
                steps=self.steps,
            )
            for b in range(self.num_episodes)
        ]

    def summary(self, confidence: float = 0.95) -> dict[str, tuple[float, float]]:
        """Aggregate ``(mean, ci)`` pairs across all episodes and nodes."""
        metrics: dict[str, np.ndarray] = {
            "average_cost": self.average_cost,
            "time_to_recovery": self.time_to_recovery,
            "recovery_frequency": self.recovery_frequency,
        }
        if self.availability is not None:
            metrics["availability"] = self.availability
        return summarize_metric_arrays(metrics, confidence)


@dataclass
class BatchEpisodeState:
    """Mutable per-stream state of an in-progress batch simulation.

    Produced by :meth:`BatchRecoveryEngine.begin` and advanced in place by
    :meth:`BatchRecoveryEngine.step`.  All arrays have shape ``(B, N)``
    unless noted; the fields mirror the per-episode bookkeeping of the
    scalar :meth:`~repro.solvers.evaluation.RecoverySimulator.run_episode`
    loop one for one.  The stepwise decomposition is what the vectorized
    environment layer (:mod:`repro.envs`) builds on: a policy can inspect
    ``belief`` / ``time_since_recovery`` between steps and choose the next
    batch of actions, while :meth:`BatchRecoveryEngine.run` drives the same
    state with a closed-form strategy — both paths are bit-identical.
    """

    uniforms: np.ndarray  #: (B, N, 2 * horizon) pre-generated uniform buffer.
    t: int  #: Number of completed steps.
    state: np.ndarray  #: Hidden node states (int64).
    belief: np.ndarray  #: Two-state compromise beliefs.
    time_since_recovery: np.ndarray  #: BTR clocks (int64).
    cursor: np.ndarray  #: Per-stream uniform-consumption cursors.
    total_cost: np.ndarray  #: Accumulated Eq. 5 costs.
    recoveries: np.ndarray  #: Recovery-action counts.
    compromises: np.ndarray  #: Compromise-event counts.
    open_active: np.ndarray  #: Whether a compromise is currently unresolved.
    open_count: np.ndarray  #: Steps elapsed in the open compromise.
    delay_sum: np.ndarray  #: Sum of completed recovery delays.
    delay_count: np.ndarray  #: Number of completed recovery delays.
    available_steps: np.ndarray | None  #: (B,) steps with <= f failed nodes.
    last_failed: np.ndarray | None = None  #: (B,) failed-node counts of the last step.
    #: (B, N) mask of streams whose node crashed during the last step (before
    #: its replacement by a fresh node); always maintained by :meth:`step`.
    last_crashed: np.ndarray | None = None
    #: (B, N) ground-truth failed mask (compromised or crashed) of the last
    #: step; maintained when the scenario tracks availability (``f`` set) and
    #: ``track_metrics`` is on.  The system-level control plane
    #: (:mod:`repro.control`) consumes both masks for eviction decisions and
    #: per-episode availability under dynamic node membership.
    last_failed_mask: np.ndarray | None = None
    #: Whether recovery/compromise/delay statistics are tracked.  Rollout
    #: consumers that only need costs and beliefs (the PPO collector) switch
    #: this off to skip the bookkeeping array operations; the dynamics and
    #: random streams are unaffected.
    track_metrics: bool = True
    # Per-batch constant caches (derived from the engine's precompiled
    # arrays at begin() time so the hot step loop allocates nothing anew).
    uniforms_flat: np.ndarray = field(default=None, repr=False)  # (B * N * 2T,) view
    stream_rows: np.ndarray = field(default=None, repr=False)  # (B, N) buffer offsets
    eta_mat: np.ndarray = field(default=None, repr=False)  # (B, N) broadcast view
    initial_belief_mat: np.ndarray = field(default=None, repr=False)  # (B, N) view
    btr_deadline_mat: np.ndarray = field(default=None, repr=False)  # (B, N) view
    transition_base: np.ndarray = field(default=None, repr=False)  # (B, N) flat bases
    observation_base: np.ndarray = field(default=None, repr=False)  # (B, N) flat bases
    belief_workspace: dict = field(default=None, repr=False)  # reusable (B,) buffers
    profile: EngineProfile | None = field(default=None, repr=False)  # opt-in timings
    #: (B, horizon, K) pre-drawn adversary uniforms (dynamic adversaries only).
    adversary_uniforms: np.ndarray | None = field(default=None, repr=False)
    #: Mutable adversary state from AdversaryProcess.begin() (dynamic only).
    adversary_state: object = field(default=None, repr=False)
    #: (B, N) compromise pressure of the last step (dynamic only; diagnostics).
    last_pressure: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_episodes(self) -> int:
        return int(self.state.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.state.shape[1])


class BatchRecoveryEngine:
    """NumPy-vectorized Monte-Carlo simulator for a :class:`FleetScenario`.

    The engine precompiles the scenario's transition kernels, sampling CDFs
    and observation pmfs into dense arrays at construction time; each
    :meth:`run` then advances all episodes and nodes in lockstep with O(T)
    vectorized steps instead of O(B * N * T) Python-level steps.

    The simulation loop is decomposed into a stepwise API —
    :meth:`begin` / :meth:`step` / :meth:`finalize` — so that callers that
    need to interleave computation with the dynamics (the vectorized
    environments of :mod:`repro.envs`, and through them the PPO rollout
    loop) drive exactly the same array operations as :meth:`run`.

    Args:
        scenario: The fleet scenario to precompile.
        backend: Kernel backend name (``"reference"``, ``"fused"`` or
            ``"numba"``); ``None`` consults the ``REPRO_ENGINE_BACKEND``
            environment variable and defaults to ``"fused"``.
    """

    def __init__(self, scenario: FleetScenario, backend: str | None = None) -> None:
        self.scenario = scenario
        transition_models = scenario.transition_models()
        #: (N, |A|, |S|, |S|) raw transition matrices for belief updates.
        self._matrices = np.stack([m.matrices() for m in transition_models])
        #: (N, |A|, |S|, |S|) sampling CDFs matching Generator.choice.
        self._transition_cdf = np.stack([m.sampling_cdf() for m in transition_models])
        #: (N, |S|, |O|) observation pmfs and sampling CDFs.
        self._observation_pmf = np.stack(
            [m.matrix() for m in scenario.observation_models]
        )
        self._observation_cdf = np.stack(
            [m.sampling_cdf() for m in scenario.observation_models]
        )
        self._initial_belief = scenario.initial_beliefs()  # (N,)
        self._eta = scenario.cost_weights()  # (N,)
        self._btr_deadline = scenario.btr_deadlines()  # (N,)
        # Flattened CDF tables + per-node index bases for single-gather
        # lookups in the hot step loop: row (j, a, s) of the transition
        # table lives at (j * |A| + a) * |S| + s, row (j, s) of the
        # observation table at j * |S| + s.
        num_nodes, num_actions, num_states, _ = self._transition_cdf.shape
        self._num_states = num_states
        self._transition_cdf_flat = self._transition_cdf.reshape(-1, num_states)
        self._observation_cdf_flat = self._observation_cdf.reshape(
            -1, self._observation_cdf.shape[-1]
        )
        self._transition_node_base = (
            np.arange(num_nodes, dtype=np.int64) * num_actions * num_states
        )
        self._observation_node_base = np.arange(num_nodes, dtype=np.int64) * num_states
        # Assumption D regularity: with full-support live-state observation
        # pmfs and positive live mass in every live transition row, the
        # degenerate-observation fallback of the belief recursion can never
        # trigger, so the hot loop may skip the check.
        self._regular_observations = bool(
            (self._observation_pmf[:, :2, :] > 0.0).all()
            and (self._matrices[:, :, :2, :2].sum(axis=3) > 0.0).all()
        )
        #: The adversary process generating per-step compromise pressure;
        #: ``None`` on the scenario means the paper's static i.i.d. attacker.
        self.adversary = (
            scenario.adversary if scenario.adversary is not None else StaticAdversary()
        )
        #: Whether the adversary requires the per-step dynamic-CDF path.  A
        #: static adversary keeps the precompiled tables and kernel fast
        #: paths above untouched (bit-exact with the pre-seam engine).
        self._dynamic = not self.adversary.is_static
        # Per-node probability columns for the dynamic per-step CDF
        # construction (mirrors NodeTransitionModel._build_matrices).
        self._p_c1 = np.array([p.p_c1 for p in scenario.node_params])
        self._p_c2 = np.array([p.p_c2 for p in scenario.node_params])
        self._p_u = np.array([p.p_u for p in scenario.node_params])
        self._baseline_pressure = np.array([p.p_a for p in scenario.node_params])
        #: Resolved backend name and the kernel instance implementing it.
        self.backend = resolve_backend(backend)
        self._kernel = BACKENDS[self.backend](self)

    @property
    def is_dynamic(self) -> bool:
        """Whether the scenario's adversary takes the per-step dynamic path."""
        return self._dynamic

    # -- randomness -------------------------------------------------------------
    def draw_uniforms(self, seed: int | None, num_episodes: int) -> np.ndarray:
        """Pre-generate the uniform buffer, shape ``(B, N, 2 * horizon)``.

        Stream ``(b, j)`` is child ``b * N + j`` of ``SeedSequence(seed)``
        (episode-major), matching a scalar run of episode ``b`` on node
        ``j``'s parameters with that child's generator.  Each scalar step
        consumes one uniform for the state transition and, unless the node
        crashed, one for the observation, so ``2 * horizon`` doubles bound
        an episode's consumption.

        Seeded buffers are memoized in a small module-level cache (the
        buffer is a pure function of ``(seed, B, N, width)`` and the engine
        never writes into it), so common-random-number loops that rebuild
        engines per candidate stop regenerating identical gigastreams.
        """
        num_nodes = self.scenario.num_nodes
        width = 2 * self.scenario.horizon
        key = (seed, num_episodes, num_nodes, width)
        if seed is not None:
            cached = _UNIFORM_CACHE.get(key)
            if cached is not None:
                return cached
        children = np.random.SeedSequence(seed).spawn(num_episodes * num_nodes)
        buffer = np.empty((num_episodes * num_nodes, width))
        for row, child in enumerate(children):
            buffer[row] = np.random.default_rng(child).random(width)
        uniforms = buffer.reshape(num_episodes, num_nodes, width)
        if seed is not None and uniforms.size <= _UNIFORM_CACHE_MAX_ELEMENTS:
            uniforms.setflags(write=False)
            if len(_UNIFORM_CACHE) >= _UNIFORM_CACHE_MAX_ENTRIES:
                _UNIFORM_CACHE.pop(next(iter(_UNIFORM_CACHE)))
            _UNIFORM_CACHE[key] = uniforms
        return uniforms

    def draw_adversary_uniforms(
        self, seed: int | None, num_episodes: int
    ) -> np.ndarray | None:
        """Pre-draw the adversary's ``(B, horizon, K)`` uniform buffer.

        Episode ``b``'s row comes from the salted stream
        ``SeedSequence([salt, seed], spawn_key=(b,))``, independent of the
        engine streams of :meth:`draw_uniforms`; rows are per-episode, so
        the ``[b : b + 1]`` scalar replay and the ``[lo : hi)`` shard slices
        of :mod:`repro.control.parallel` reproduce a monolithic draw
        exactly.  Returns ``None`` for static adversaries and for dynamic
        adversaries that consume no randomness.
        """
        if not self._dynamic:
            return None
        if seed is None:
            raise ValueError(
                "a dynamic adversary needs a concrete seed to draw its "
                "uniform streams; pass seed= (or pre-drawn adversary_uniforms=)"
            )
        return _draw_adversary_uniforms(
            self.adversary,
            int(seed),
            0,
            num_episodes,
            self.scenario.num_nodes,
            self.scenario.horizon,
        )

    # -- public API -------------------------------------------------------------
    def run(
        self,
        strategies: RecoveryStrategy | BatchStrategy | Sequence,
        num_episodes: int | None = None,
        seed: int | None = None,
        uniforms: np.ndarray | None = None,
        profile: bool | EngineProfile | None = None,
        trellis: bool | None = None,
        adversary_uniforms: np.ndarray | None = None,
    ) -> BatchSimulationResult:
        """Simulate ``num_episodes`` episodes of the whole fleet.

        Args:
            strategies: One strategy shared by every node, or a sequence of
                per-node strategies (scalar strategies are batched via
                :func:`~repro.sim.strategies.as_batch_strategy`).
            num_episodes: Batch size ``B``; required unless ``uniforms`` is
                given.
            seed: Seed for the episode seed tree; ``None`` draws fresh OS
                entropy (non-reproducible), matching the scalar simulator.
            uniforms: Pre-drawn ``(B, N, width)`` uniform buffer, bypassing
                :meth:`draw_uniforms` (benchmarks use this to time the step
                path separately from stream generation).
            profile: ``True`` (or an :class:`EngineProfile` to accumulate
                into) records per-phase wall-clock time; the filled profile
                is returned on the result.
            trellis: Force the prefix-memoized belief trellis on or off for
                eligible deterministic strategies; ``None`` lets the
                backend decide.
            adversary_uniforms: Pre-drawn ``(B, horizon, K)`` adversary
                buffer (dynamic adversaries with pre-drawn ``uniforms``
                require it; the seed path draws it automatically from the
                same seed).
        """
        if uniforms is None:
            if num_episodes is None or num_episodes < 1:
                raise ValueError("num_episodes must be >= 1")
            if self._dynamic and seed is None:
                # Resolve one entropy up front so the engine streams and the
                # adversary streams come from the same (fresh) root.
                seed = resolve_adversary_entropy(None)
            uniforms = self.draw_uniforms(seed, num_episodes)
            if self._dynamic and adversary_uniforms is None:
                adversary_uniforms = self.draw_adversary_uniforms(seed, num_episodes)
        batch_strategies = self._normalize_strategies(strategies)
        prof = EngineProfile(backend=self.backend) if profile is True else profile
        result = self._simulate(
            batch_strategies,
            uniforms,
            profile=prof,
            trellis=trellis,
            adversary_uniforms=adversary_uniforms,
        )
        if prof is not None:
            result = replace(result, profile=prof)
        return result

    def run_threshold_population(
        self,
        thresholds: np.ndarray,
        num_episodes: int,
        seed: int | None = None,
    ) -> np.ndarray:
        """Estimate ``J(theta)`` for a whole population of threshold vectors.

        Evaluates ``K`` candidate threshold vectors with common random
        numbers (every candidate sees the same ``num_episodes`` episode
        streams) in one batch of ``K * num_episodes`` episodes.  Requires a
        single-node scenario.  Row ``k`` of the result equals
        ``RecoverySimulator.estimate_cost`` for candidate ``k`` exactly.

        Args:
            thresholds: Candidate matrix of shape ``(K, d)`` (a ``(d,)``
                vector is treated as ``K = 1``).
            num_episodes: Episodes per candidate ``M``.
            seed: Seed for the shared episode streams.

        Returns:
            Estimated costs, shape ``(K,)``.
        """
        if self.scenario.num_nodes != 1:
            raise ValueError("population evaluation requires a single-node scenario")
        if num_episodes < 1:
            raise ValueError("num_episodes must be >= 1")
        thresholds = np.atleast_2d(np.asarray(thresholds, dtype=float))
        num_candidates = thresholds.shape[0]
        if self._dynamic and seed is None:
            seed = resolve_adversary_entropy(None)
        base = self.draw_uniforms(seed, num_episodes)  # (M, 1, 2T)
        uniforms = np.tile(base, (num_candidates, 1, 1))  # (K*M, 1, 2T)
        adversary_uniforms = None
        if self._dynamic:
            # Common random numbers for the adversary too: every candidate
            # sees the same attack realisations.
            adversary_base = self.draw_adversary_uniforms(seed, num_episodes)
            if adversary_base is not None:
                adversary_uniforms = np.tile(adversary_base, (num_candidates, 1, 1))
        strategy = BatchMultiThreshold(np.repeat(thresholds, num_episodes, axis=0))
        result = self._simulate(
            [strategy], uniforms, adversary_uniforms=adversary_uniforms
        )
        costs = result.average_cost.reshape(num_candidates, num_episodes)
        return costs.mean(axis=1)

    # -- internals --------------------------------------------------------------
    def _normalize_strategies(self, strategies) -> list[BatchStrategy]:
        num_nodes = self.scenario.num_nodes
        if isinstance(strategies, (list, tuple)):
            if len(strategies) != num_nodes:
                raise ValueError(
                    f"need one strategy per node ({num_nodes}), got {len(strategies)}"
                )
            return [as_batch_strategy(s) for s in strategies]
        return [as_batch_strategy(strategies)] * num_nodes

    # -- stepwise simulation ----------------------------------------------------
    def begin(
        self,
        num_episodes: int | None = None,
        seed: int | None = None,
        track_metrics: bool = True,
        uniforms: np.ndarray | None = None,
        profile: bool = False,
        adversary_uniforms: np.ndarray | None = None,
    ) -> BatchEpisodeState:
        """Initialize the per-stream state for ``num_episodes`` episodes.

        Draws the uniform buffer from the same per-episode seed tree as
        :meth:`run`, so stepping the returned state with the recover masks a
        strategy would produce reproduces :meth:`run` exactly.

        Args:
            num_episodes: Batch size ``B``; required unless ``uniforms`` is
                given.
            seed: Seed for the episode seed tree.
            track_metrics: When ``False``, :meth:`step` skips the
                recovery/compromise/delay/total-cost bookkeeping (per-step
                costs, beliefs and random streams are unchanged) — a fast
                path for rollout collectors that consume the returned step
                costs and observations and never call :meth:`finalize`.
            uniforms: Pre-drawn ``(B, N, width)`` uniform buffer (e.g. a
                per-episode slice of :meth:`draw_uniforms`), which makes a
                ``B = 1`` replay of one row of a larger batch bit-identical
                to that row — the scalar reference loop of
                :mod:`repro.control` relies on this.  Mutually exclusive
                with ``seed``/``num_episodes``.
            profile: When ``True``, attach an :class:`EngineProfile` to the
                state; :meth:`step` then records per-phase wall-clock time
                into ``sim.profile``.
            adversary_uniforms: Pre-drawn ``(B, horizon, K)`` adversary
                buffer (a per-episode slice of
                :meth:`draw_adversary_uniforms` slices on the episode axis
                just like ``uniforms``).  Required when ``uniforms`` is
                pre-drawn and the scenario's adversary is dynamic; the
                seed path draws it from the same seed automatically.
        """
        if uniforms is not None:
            if num_episodes is not None or seed is not None:
                raise ValueError("pass either uniforms or (num_episodes, seed), not both")
            uniforms = np.asarray(uniforms, dtype=float)
            if uniforms.ndim != 3 or uniforms.shape[1] != self.scenario.num_nodes:
                raise ValueError(
                    "uniforms must have shape (B, num_nodes, width), got "
                    f"{uniforms.shape}"
                )
        else:
            if num_episodes is None or num_episodes < 1:
                raise ValueError("num_episodes must be >= 1")
            if self._dynamic and seed is None:
                seed = resolve_adversary_entropy(None)
            uniforms = self.draw_uniforms(seed, num_episodes)
            if self._dynamic and adversary_uniforms is None:
                adversary_uniforms = self.draw_adversary_uniforms(seed, num_episodes)
        sim = self._begin(uniforms, track_metrics, adversary_uniforms)
        if profile:
            sim.profile = EngineProfile(backend=self.backend)
        return sim

    def _begin(
        self,
        uniforms: np.ndarray,
        track_metrics: bool = True,
        adversary_uniforms: np.ndarray | None = None,
    ) -> BatchEpisodeState:
        num_episodes, num_nodes, _ = uniforms.shape
        shape = (num_episodes, num_nodes)
        track_availability = self.scenario.f is not None
        adversary_state = None
        if self._dynamic:
            width = self.adversary.uniforms_per_step(num_nodes)
            if width > 0:
                if adversary_uniforms is None:
                    raise ValueError(
                        "the scenario's adversary is dynamic: pass "
                        "adversary_uniforms alongside pre-drawn uniforms "
                        "(engine.draw_adversary_uniforms(seed, num_episodes))"
                    )
                adversary_uniforms = np.asarray(adversary_uniforms, dtype=float)
                if (
                    adversary_uniforms.ndim != 3
                    or adversary_uniforms.shape[0] != num_episodes
                    or adversary_uniforms.shape[1] < self.scenario.horizon
                    or adversary_uniforms.shape[2] != width
                ):
                    raise ValueError(
                        "adversary_uniforms must have shape (B, horizon, "
                        f"{width}), got {adversary_uniforms.shape}"
                    )
            else:
                adversary_uniforms = None
            adversary_state = self.adversary.begin(num_episodes, num_nodes)
        else:
            adversary_uniforms = None
        return BatchEpisodeState(
            uniforms=uniforms,
            t=0,
            state=np.full(shape, _HEALTHY, dtype=np.int64),
            belief=np.array(np.broadcast_to(self._initial_belief, shape), dtype=float),
            time_since_recovery=np.zeros(shape, dtype=np.int64),
            cursor=np.zeros(shape, dtype=np.int64),
            total_cost=np.zeros(shape),
            recoveries=np.zeros(shape, dtype=np.int64),
            compromises=np.zeros(shape, dtype=np.int64),
            open_active=np.zeros(shape, dtype=bool),
            open_count=np.zeros(shape, dtype=np.int64),
            delay_sum=np.zeros(shape),
            delay_count=np.zeros(shape, dtype=np.int64),
            available_steps=(
                np.zeros(num_episodes, dtype=np.int64) if track_availability else None
            ),
            track_metrics=track_metrics,
            uniforms_flat=uniforms.reshape(-1),
            stream_rows=(
                np.arange(num_episodes * num_nodes, dtype=np.int64).reshape(shape)
                * uniforms.shape[2]
            ),
            eta_mat=np.broadcast_to(self._eta, shape),
            initial_belief_mat=np.broadcast_to(self._initial_belief, shape),
            btr_deadline_mat=np.broadcast_to(self._btr_deadline, shape),
            transition_base=np.broadcast_to(self._transition_node_base, shape),
            observation_base=np.broadcast_to(self._observation_node_base, shape),
            belief_workspace=self._kernel.make_step_workspace(num_episodes),
            adversary_uniforms=adversary_uniforms,
            adversary_state=adversary_state,
        )

    def forced_recoveries(self, sim: BatchEpisodeState) -> np.ndarray:
        """Boolean mask of streams whose BTR deadline forces the next action."""
        return sim.time_since_recovery >= sim.btr_deadline_mat

    def step(
        self,
        sim: BatchEpisodeState,
        recover: np.ndarray,
        btr_applied: bool = False,
    ) -> np.ndarray:
        """Advance every stream by one step under the given recover mask.

        ``recover`` is the policy's boolean decision per ``(episode, node)``
        stream; the BTR constraint is applied on top (a stream at its
        deadline recovers regardless), exactly as in the scalar simulator.
        Callers that have already OR-ed the :meth:`forced_recoveries` mask
        into ``recover`` (the environment layer does) pass
        ``btr_applied=True`` to skip the recomputation.  Mutates ``sim`` in
        place and returns the per-stream step cost ``c_N(s_t, a_t)``, shape
        ``(B, N)``.

        The body avoids fancy-index scatters in favour of element-wise
        masked arithmetic: the resulting values are identical (the parity
        suite checks them bit for bit), but a step over a small batch costs
        roughly half as many microseconds — which matters because the PPO
        rollout loop calls this once per timestep.
        """
        state = sim.state
        belief = sim.belief
        time_since_recovery = sim.time_since_recovery
        cursor = sim.cursor
        num_states = self._num_states
        prof = sim.profile
        if prof is not None:
            t_mark = perf_counter_ns()

        # Policy decision on the current belief; the BTR constraint
        # overrides with a forced recovery at the deadline.
        if not btr_applied:
            recover = np.asarray(recover, dtype=bool) | (
                time_since_recovery >= sim.btr_deadline_mat
            )

        # Cost c_N(s, a) = eta * s * (1 - a) + a  (Eq. 5).
        step_cost = np.where(recover, 1.0, sim.eta_mat * (state == _COMPROMISED))
        if sim.track_metrics:
            # total_cost only feeds finalize(); fast-path consumers read the
            # returned per-step costs instead.
            sim.total_cost += step_cost
        if prof is not None:
            now = perf_counter_ns()
            prof.add("bookkeeping", now - t_mark)
            t_mark = now

        # Hidden-state transition: invert the per-(node, action, state)
        # sampling CDF on this step's transition uniform.  With a dynamic
        # adversary the CDF rows are rebuilt per step from the adversary's
        # compromise pressure instead of gathered from the static tables.
        u_transition = sim.uniforms_flat[sim.stream_rows + cursor]
        cursor += 1
        if self._dynamic:
            adversary_u = (
                sim.adversary_uniforms[:, sim.t, :]
                if sim.adversary_uniforms is not None
                else None
            )
            next_state = self._dynamic_transition(
                sim, recover, state, u_transition, adversary_u
            )
        else:
            adversary_u = None
            transition_rows = sim.transition_base + (recover * num_states + state)
            cdf_rows = self._transition_cdf_flat[transition_rows]  # (B, N, |S|)
            next_state = (cdf_rows <= u_transition[..., None]).sum(axis=2)

        crashed = next_state == _CRASHED
        alive = ~crashed
        sim.last_crashed = crashed
        if prof is not None:
            now = perf_counter_ns()
            prof.add("transition_sample", now - t_mark)
            t_mark = now

        if sim.track_metrics:
            sim.recoveries += recover
            # A compromise window closes when the node recovers, crashes, or
            # is restored to healthy by a software update; the three events
            # are disjoint, so one mask applies the delay bookkeeping that
            # the scalar simulator performs case by case.
            open_active = sim.open_active
            back_to_healthy = alive & (next_state == _HEALTHY)
            resolved = open_active & (recover | crashed | back_to_healthy)
            sim.delay_sum += sim.open_count * resolved
            sim.delay_count += resolved
            new_compromise = (
                alive & (state != _COMPROMISED) & (next_state == _COMPROMISED)
            )
            sim.compromises += new_compromise
            open_active = (open_active & ~resolved) | new_compromise
            sim.open_active = open_active
            sim.open_count *= ~new_compromise
            sim.open_count += alive & open_active

            if sim.available_steps is not None:
                failed = (next_state == _COMPROMISED) | crashed
                failed_counts = failed.sum(axis=1)
                sim.available_steps += failed_counts <= self.scenario.f
                sim.last_failed = failed_counts
                sim.last_failed_mask = failed
        if prof is not None:
            now = perf_counter_ns()
            prof.add("bookkeeping", now - t_mark)
            t_mark = now

        # Observation + belief update for live nodes only (a crashed node
        # is replaced by a fresh one and draws no observation).  A crashed
        # stream's state and observation collapse to HEALTHY = 0, so the
        # ``where`` selects reduce to one multiply by the alive mask; its
        # belief update is computed but discarded below (the reset mask
        # covers every crashed stream).
        u_observation = sim.uniforms_flat[sim.stream_rows + cursor]
        cursor += alive
        live_state = next_state * alive
        observed_state = live_state
        if self._dynamic:
            # A stealth adversary may hide a compromise from the IDS: the
            # observation is drawn from the HEALTHY alert distribution on
            # the *same* uniform (streams never shift), while the true
            # hidden state and the cost/metric bookkeeping are untouched.
            suppress = self.adversary.alert_suppression(
                sim.adversary_state, sim.t, adversary_u
            )
            if suppress is not None:
                observed_state = live_state * ~suppress
        obs_cdf_rows = self._observation_cdf_flat[sim.observation_base + observed_state]
        observation_index = (obs_cdf_rows <= u_observation[..., None]).sum(axis=2)
        if prof is not None:
            now = perf_counter_ns()
            prof.add("observation_draw", now - t_mark)
            t_mark = now
        if sim.belief_workspace is None:
            # States constructed outside begin() (tests, adapters) arrive
            # without engine-owned buffers; allocate them once, not per step.
            sim.belief_workspace = self._kernel.make_step_workspace(state.shape[0])
        new_belief = self._kernel.update_beliefs(
            recover, observation_index, belief, workspace=sim.belief_workspace
        )
        if prof is not None:
            now = perf_counter_ns()
            prof.add("belief_update", now - t_mark)
            t_mark = now

        # Resets: a crashed node is replaced by a fresh healthy node; a
        # recovery restarts the BTR window and the belief.
        reset = crashed | recover
        sim.belief = np.where(reset, sim.initial_belief_mat, new_belief)
        sim.time_since_recovery = np.where(reset, 0, time_since_recovery + ~reset)
        sim.state = live_state
        sim.t += 1
        if prof is not None:
            prof.add("bookkeeping", perf_counter_ns() - t_mark)
            prof.steps += 1
        return step_cost

    def finalize(self, sim: BatchEpisodeState) -> BatchSimulationResult:
        """Summarize a (finished or in-progress) state into per-episode results.

        Does not mutate ``sim``: the end-of-episode censoring of unresolved
        compromises (matching the scalar simulator) is applied on copies, so
        the state may keep stepping afterwards.  States begun with
        ``track_metrics=False`` carry no statistics and are rejected loudly
        rather than summarized as zeros.
        """
        if not sim.track_metrics:
            raise RuntimeError(
                "cannot finalize a track_metrics=False state: the cost/recovery "
                "accumulators were skipped; begin(..., track_metrics=True) instead"
            )
        steps = max(sim.t, 1)
        shape = sim.state.shape
        delay_sum = sim.delay_sum.copy()
        delay_count = sim.delay_count.copy()
        # Episodes ending with an unresolved compromise contribute the
        # elapsed time, the same censoring the scalar simulator applies.
        delay_sum[sim.open_active] += sim.open_count[sim.open_active]
        delay_count[sim.open_active] += 1

        time_to_recovery = np.divide(
            delay_sum,
            delay_count,
            out=np.zeros(shape),
            where=delay_count > 0,
        )
        return BatchSimulationResult(
            average_cost=sim.total_cost / steps,
            time_to_recovery=time_to_recovery,
            recovery_frequency=sim.recoveries / steps,
            num_recoveries=sim.recoveries.copy(),
            num_compromises=sim.compromises.copy(),
            steps=steps,
            availability=(
                (sim.available_steps / steps) if sim.available_steps is not None else None
            ),
        )

    def _dynamic_transition(
        self,
        sim: BatchEpisodeState,
        recover: np.ndarray,
        state: np.ndarray,
        u_transition: np.ndarray,
        adversary_u: np.ndarray | None,
    ) -> np.ndarray:
        """Sample next states under the adversary's per-step pressure.

        Rebuilds the per-stream transition CDF row from the pressure using
        the exact product forms of
        :meth:`~repro.core.node_model.NodeTransitionModel._build_matrices`
        followed by the same cumulative-sum-and-normalize, so that when the
        pressure equals the baseline ``p_A`` the row is **bit-identical** to
        the precompiled static table (the parity suite asserts this via
        ``StaticAdversary(force_dynamic=True)``).
        """
        pressure = self.adversary.compromise_pressure(
            sim.adversary_state, sim.t, self._baseline_pressure, adversary_u
        )
        sim.last_pressure = pressure
        compromised = state == _COMPROMISED
        # Crash probability of the current state; live states only (crashed
        # streams were reset to fresh healthy nodes at the end of last step).
        crash = np.where(compromised, self._p_c2, self._p_c1)
        survive = 1.0 - crash
        wait_from_c = compromised & ~recover
        # Row entries in state order (H, C, CRASHED); see Eq. 2.
        to_healthy = np.where(
            wait_from_c, survive * self._p_u, (1.0 - pressure) * survive
        )
        to_compromised = np.where(
            wait_from_c, survive * (1.0 - self._p_u), survive * pressure
        )
        # Same association as cumsum([e0, e1, e2]) then /= last entry.
        partial = to_healthy + to_compromised
        total = partial + crash
        c_healthy = to_healthy / total
        c_compromised = partial / total
        return (c_healthy <= u_transition).astype(np.int64) + (
            c_compromised <= u_transition
        )

    def _simulate(
        self,
        strategies: list[BatchStrategy],
        uniforms: np.ndarray,
        profile: EngineProfile | None = None,
        trellis: bool | None = None,
        adversary_uniforms: np.ndarray | None = None,
    ) -> BatchSimulationResult:
        if self._dynamic:
            return self._simulate_dynamic(
                strategies, uniforms, profile, adversary_uniforms
            )
        return self._kernel.simulate(
            strategies, uniforms, profile=profile, trellis=trellis
        )

    def _simulate_dynamic(
        self,
        strategies: list[BatchStrategy],
        uniforms: np.ndarray,
        profile: EngineProfile | None,
        adversary_uniforms: np.ndarray | None,
    ) -> BatchSimulationResult:
        """Generic step-loop driver for dynamic adversaries.

        The kernels' fused ``simulate`` fast paths (merged-CDF rank tables,
        transition matmul tables, the belief trellis) all bake the static
        per-node CDFs in at construction time, so dynamic adversaries route
        through this explicit loop instead — :meth:`step` rebuilds the
        transition CDFs per step, while belief updates still go through the
        active kernel's ``update_beliefs`` (the defender's recursion uses
        the nominal model on every backend).
        """
        sim = self._begin(uniforms, True, adversary_uniforms)
        if profile is not None:
            sim.profile = profile
        recover = np.empty(sim.state.shape, dtype=bool)
        for _ in range(self.scenario.horizon):
            for j, strategy in enumerate(strategies):
                recover[:, j] = strategy.action_batch(
                    sim.belief[:, j], sim.time_since_recovery[:, j]
                )
            self.step(sim, recover)
        return self.finalize(sim)

    def _update_beliefs(
        self,
        recover: np.ndarray,
        observation_index: np.ndarray,
        belief: np.ndarray,
        workspace: dict | None = None,
    ) -> np.ndarray:
        """Batched Appendix A recursion (delegates to the active kernel)."""
        return self._kernel.update_beliefs(
            recover, observation_index, belief, workspace=workspace
        )
