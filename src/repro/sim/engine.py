"""Vectorized batch simulation of the node POMDP (Problem 1).

:class:`BatchRecoveryEngine` advances ``B`` episodes x ``N`` nodes
simultaneously as NumPy array operations: batched hidden-state transitions
(``f_N``), batched observation sampling from ``Z``, the batched two-state
belief recursion of Appendix A, batched strategy application, and batched
cost/metric accumulation.  All per-episode state is held in arrays of shape
``(B, N)`` (episodes are rows, nodes are columns).

Exactness
---------

The engine is not merely statistically equivalent to the scalar
:class:`~repro.solvers.evaluation.RecoverySimulator` -- it is **bit-exact**
per episode.  Three properties make that possible:

1. *Counter-free randomness.*  Each ``(episode, node)`` pair draws its
   uniforms from an independent child of ``numpy.random.SeedSequence(seed)``
   (episode-major order), the same streams the scalar simulator consumes
   when run one episode at a time.  The uniforms are pre-generated into a
   ``(B, N, 2 * horizon)`` buffer and consumed through a per-stream cursor,
   so the skip-on-crash draw pattern of the scalar loop is reproduced.
2. *Exact categorical inversion.*  ``Generator.choice(n, p)`` internally
   inverts the CDF ``p.cumsum() / p.cumsum()[-1]`` on one uniform double;
   the engine precomputes the same CDFs
   (:meth:`~repro.core.node_model.NodeTransitionModel.sampling_cdf`,
   :meth:`~repro.core.observation.ObservationModel.sampling_cdf`) and
   inverts them with vectorized comparisons.
3. *Bit-compatible belief updates.*  The batched prediction step evaluates
   the same ``vector @ matrix`` product as the scalar update (see
   :func:`repro.core.belief._batch_two_state_posterior`), whose rounding
   matches the scalar BLAS path bit for bit.

``tests/test_sim_equivalence.py`` asserts the resulting exact parity for
every strategy class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.belief import _batch_two_state_posterior
from ..core.metrics import summarize_metric_arrays
from ..core.node_model import NodeAction, NodeState
from ..core.strategies import RecoveryStrategy
from .scenario import FleetScenario
from .strategies import BatchMultiThreshold, BatchStrategy, as_batch_strategy

__all__ = ["BatchSimulationResult", "BatchRecoveryEngine"]

_HEALTHY = int(NodeState.HEALTHY)
_COMPROMISED = int(NodeState.COMPROMISED)
_CRASHED = int(NodeState.CRASHED)


@dataclass(frozen=True)
class BatchSimulationResult:
    """Per-episode, per-node statistics of one batch simulation.

    Every array has shape ``(B, N)``; the fields mirror
    :class:`~repro.solvers.evaluation.RecoveryEpisodeResult` entry by entry.

    Attributes:
        average_cost: Per-episode average cost ``J_i`` (Eq. 5 estimator).
        time_to_recovery: Mean steps from compromise to recovery start.
        recovery_frequency: Fraction of steps with a recovery action.
        num_recoveries: Recovery-action counts.
        num_compromises: Compromise-event counts.
        steps: Episode length (the scenario horizon).
        availability: Per-episode fleet availability ``T^(A)`` of shape
            ``(B,)`` when the scenario defines a tolerance threshold ``f``,
            else ``None``.
    """

    average_cost: np.ndarray
    time_to_recovery: np.ndarray
    recovery_frequency: np.ndarray
    num_recoveries: np.ndarray
    num_compromises: np.ndarray
    steps: int
    availability: np.ndarray | None = None

    @property
    def num_episodes(self) -> int:
        return int(self.average_cost.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.average_cost.shape[1])

    def episode_results(self, node: int = 0) -> list:
        """Per-episode scalar results for one node, in episode order.

        Returns :class:`~repro.solvers.evaluation.RecoveryEpisodeResult`
        objects identical to what the scalar simulator produces for the same
        seed (imported lazily to avoid a package cycle).
        """
        from ..solvers.evaluation import RecoveryEpisodeResult

        return [
            RecoveryEpisodeResult(
                average_cost=float(self.average_cost[b, node]),
                time_to_recovery=float(self.time_to_recovery[b, node]),
                recovery_frequency=float(self.recovery_frequency[b, node]),
                num_recoveries=int(self.num_recoveries[b, node]),
                num_compromises=int(self.num_compromises[b, node]),
                steps=self.steps,
            )
            for b in range(self.num_episodes)
        ]

    def summary(self, confidence: float = 0.95) -> dict[str, tuple[float, float]]:
        """Aggregate ``(mean, ci)`` pairs across all episodes and nodes."""
        metrics: dict[str, np.ndarray] = {
            "average_cost": self.average_cost,
            "time_to_recovery": self.time_to_recovery,
            "recovery_frequency": self.recovery_frequency,
        }
        if self.availability is not None:
            metrics["availability"] = self.availability
        return summarize_metric_arrays(metrics, confidence)


class BatchRecoveryEngine:
    """NumPy-vectorized Monte-Carlo simulator for a :class:`FleetScenario`.

    The engine precompiles the scenario's transition kernels, sampling CDFs
    and observation pmfs into dense arrays at construction time; each
    :meth:`run` then advances all episodes and nodes in lockstep with O(T)
    vectorized steps instead of O(B * N * T) Python-level steps.
    """

    def __init__(self, scenario: FleetScenario) -> None:
        self.scenario = scenario
        transition_models = scenario.transition_models()
        #: (N, |A|, |S|, |S|) raw transition matrices for belief updates.
        self._matrices = np.stack([m.matrices() for m in transition_models])
        #: (N, |A|, |S|, |S|) sampling CDFs matching Generator.choice.
        self._transition_cdf = np.stack([m.sampling_cdf() for m in transition_models])
        #: (N, |S|, |O|) observation pmfs and sampling CDFs.
        self._observation_pmf = np.stack(
            [m.matrix() for m in scenario.observation_models]
        )
        self._observation_cdf = np.stack(
            [m.sampling_cdf() for m in scenario.observation_models]
        )
        self._initial_belief = scenario.initial_beliefs()  # (N,)
        self._eta = scenario.cost_weights()  # (N,)
        self._btr_deadline = scenario.btr_deadlines()  # (N,)

    # -- randomness -------------------------------------------------------------
    def _draw_uniforms(self, seed: int | None, num_episodes: int) -> np.ndarray:
        """Pre-generate the uniform buffer, shape ``(B, N, 2 * horizon)``.

        Stream ``(b, j)`` is child ``b * N + j`` of ``SeedSequence(seed)``
        (episode-major), matching a scalar run of episode ``b`` on node
        ``j``'s parameters with that child's generator.  Each scalar step
        consumes one uniform for the state transition and, unless the node
        crashed, one for the observation, so ``2 * horizon`` doubles bound
        an episode's consumption.
        """
        num_nodes = self.scenario.num_nodes
        children = np.random.SeedSequence(seed).spawn(num_episodes * num_nodes)
        width = 2 * self.scenario.horizon
        buffer = np.empty((num_episodes * num_nodes, width))
        for row, child in enumerate(children):
            buffer[row] = np.random.default_rng(child).random(width)
        return buffer.reshape(num_episodes, num_nodes, width)

    # -- public API -------------------------------------------------------------
    def run(
        self,
        strategies: RecoveryStrategy | BatchStrategy | Sequence,
        num_episodes: int,
        seed: int | None = None,
    ) -> BatchSimulationResult:
        """Simulate ``num_episodes`` episodes of the whole fleet.

        Args:
            strategies: One strategy shared by every node, or a sequence of
                per-node strategies (scalar strategies are batched via
                :func:`~repro.sim.strategies.as_batch_strategy`).
            num_episodes: Batch size ``B``.
            seed: Seed for the episode seed tree; ``None`` draws fresh OS
                entropy (non-reproducible), matching the scalar simulator.
        """
        if num_episodes < 1:
            raise ValueError("num_episodes must be >= 1")
        batch_strategies = self._normalize_strategies(strategies)
        uniforms = self._draw_uniforms(seed, num_episodes)
        return self._simulate(batch_strategies, uniforms)

    def run_threshold_population(
        self,
        thresholds: np.ndarray,
        num_episodes: int,
        seed: int | None = None,
    ) -> np.ndarray:
        """Estimate ``J(theta)`` for a whole population of threshold vectors.

        Evaluates ``K`` candidate threshold vectors with common random
        numbers (every candidate sees the same ``num_episodes`` episode
        streams) in one batch of ``K * num_episodes`` episodes.  Requires a
        single-node scenario.  Row ``k`` of the result equals
        ``RecoverySimulator.estimate_cost`` for candidate ``k`` exactly.

        Args:
            thresholds: Candidate matrix of shape ``(K, d)`` (a ``(d,)``
                vector is treated as ``K = 1``).
            num_episodes: Episodes per candidate ``M``.
            seed: Seed for the shared episode streams.

        Returns:
            Estimated costs, shape ``(K,)``.
        """
        if self.scenario.num_nodes != 1:
            raise ValueError("population evaluation requires a single-node scenario")
        if num_episodes < 1:
            raise ValueError("num_episodes must be >= 1")
        thresholds = np.atleast_2d(np.asarray(thresholds, dtype=float))
        num_candidates = thresholds.shape[0]
        base = self._draw_uniforms(seed, num_episodes)  # (M, 1, 2T)
        uniforms = np.tile(base, (num_candidates, 1, 1))  # (K*M, 1, 2T)
        strategy = BatchMultiThreshold(np.repeat(thresholds, num_episodes, axis=0))
        result = self._simulate([strategy], uniforms)
        costs = result.average_cost.reshape(num_candidates, num_episodes)
        return costs.mean(axis=1)

    # -- internals --------------------------------------------------------------
    def _normalize_strategies(self, strategies) -> list[BatchStrategy]:
        num_nodes = self.scenario.num_nodes
        if isinstance(strategies, (list, tuple)):
            if len(strategies) != num_nodes:
                raise ValueError(
                    f"need one strategy per node ({num_nodes}), got {len(strategies)}"
                )
            return [as_batch_strategy(s) for s in strategies]
        return [as_batch_strategy(strategies)] * num_nodes

    def _simulate(
        self, strategies: list[BatchStrategy], uniforms: np.ndarray
    ) -> BatchSimulationResult:
        scenario = self.scenario
        num_episodes, num_nodes, _ = uniforms.shape
        horizon = scenario.horizon
        shape = (num_episodes, num_nodes)
        node_index = np.broadcast_to(np.arange(num_nodes), shape)
        initial_belief = np.broadcast_to(self._initial_belief, shape)
        eta = np.broadcast_to(self._eta, shape)
        track_availability = scenario.f is not None

        # Per-stream simulation state.
        state = np.full(shape, _HEALTHY, dtype=np.int64)
        belief = np.array(initial_belief, dtype=float)
        time_since_recovery = np.zeros(shape, dtype=np.int64)
        cursor = np.zeros(shape, dtype=np.int64)

        # Accumulators, mirroring the scalar episode bookkeeping.
        total_cost = np.zeros(shape)
        recoveries = np.zeros(shape, dtype=np.int64)
        compromises = np.zeros(shape, dtype=np.int64)
        open_active = np.zeros(shape, dtype=bool)
        open_count = np.zeros(shape, dtype=np.int64)
        delay_sum = np.zeros(shape)
        delay_count = np.zeros(shape, dtype=np.int64)
        available_steps = np.zeros(num_episodes, dtype=np.int64)

        for _ in range(horizon):
            # Strategy decision on the current belief; the BTR constraint
            # overrides with a forced recovery at the deadline.
            recover = np.empty(shape, dtype=bool)
            for j, strategy in enumerate(strategies):
                recover[:, j] = strategy.action_batch(
                    belief[:, j], time_since_recovery[:, j]
                )
            recover |= time_since_recovery >= self._btr_deadline
            action = recover.astype(np.int64)

            # Cost c_N(s, a) = eta * s * (1 - a) + a  (Eq. 5).
            total_cost += np.where(recover, 1.0, eta * (state == _COMPROMISED))
            recoveries += recover
            closed = recover & open_active
            delay_sum[closed] += open_count[closed]
            delay_count[closed] += 1
            open_active[closed] = False

            # Hidden-state transition: invert the per-(node, action, state)
            # sampling CDF on this step's transition uniform.
            u_transition = np.take_along_axis(uniforms, cursor[..., None], axis=2)[..., 0]
            cursor += 1
            cdf_rows = self._transition_cdf[node_index, action, state]  # (B, N, |S|)
            next_state = (cdf_rows <= u_transition[..., None]).sum(axis=2)

            crashed = next_state == _CRASHED
            alive = ~crashed
            crash_closed = crashed & open_active
            delay_sum[crash_closed] += open_count[crash_closed]
            delay_count[crash_closed] += 1
            open_active[crash_closed] = False

            # Compromise/recovery-delay bookkeeping for live nodes.
            new_compromise = alive & (state != _COMPROMISED) & (next_state == _COMPROMISED)
            compromises += new_compromise
            open_count[new_compromise] = 0
            open_active[new_compromise] = True
            back_to_healthy = alive & (next_state == _HEALTHY)
            softly_restored = back_to_healthy & open_active & ~recover
            delay_sum[softly_restored] += open_count[softly_restored]
            delay_count[softly_restored] += 1
            open_active[back_to_healthy] = False
            open_count[alive & open_active] += 1

            if track_availability:
                failed = (next_state == _COMPROMISED) | crashed
                available_steps += failed.sum(axis=1) <= scenario.f

            # Observation + belief update for live nodes only (a crashed node
            # is replaced by a fresh one and draws no observation).
            u_observation = np.take_along_axis(uniforms, cursor[..., None], axis=2)[..., 0]
            cursor[alive] += 1
            observation_state = np.where(alive, next_state, _HEALTHY)
            obs_cdf_rows = self._observation_cdf[node_index, observation_state]
            observation_index = (obs_cdf_rows <= u_observation[..., None]).sum(axis=2)
            new_belief = self._update_beliefs(recover, observation_index, belief)
            belief = np.where(alive, new_belief, belief)

            # Resets: a crashed node is replaced by a fresh healthy node; a
            # recovery restarts the BTR window and the belief.
            reset = crashed | (alive & recover)
            belief[reset] = initial_belief[reset]
            time_since_recovery[reset] = 0
            time_since_recovery[alive & ~recover] += 1
            state = np.where(crashed, _HEALTHY, next_state)

        # Episodes ending with an unresolved compromise contribute the
        # elapsed time, the same censoring the scalar simulator applies.
        delay_sum[open_active] += open_count[open_active]
        delay_count[open_active] += 1

        time_to_recovery = np.divide(
            delay_sum,
            delay_count,
            out=np.zeros(shape),
            where=delay_count > 0,
        )
        return BatchSimulationResult(
            average_cost=total_cost / horizon,
            time_to_recovery=time_to_recovery,
            recovery_frequency=recoveries / horizon,
            num_recoveries=recoveries,
            num_compromises=compromises,
            steps=horizon,
            availability=(available_steps / horizon) if track_availability else None,
        )

    def _update_beliefs(
        self,
        recover: np.ndarray,
        observation_index: np.ndarray,
        belief: np.ndarray,
    ) -> np.ndarray:
        """Batched Appendix A recursion, node by node (shared matrices)."""
        updated = np.empty_like(belief)
        for j in range(self.scenario.num_nodes):
            likelihoods = self._observation_pmf[j]  # (|S|, |O|)
            obs = observation_index[:, j]
            updated[:, j] = _batch_two_state_posterior(
                belief[:, j],
                recover[:, j],
                likelihoods[_HEALTHY][obs],
                likelihoods[_COMPROMISED][obs],
                self._matrices[j, int(NodeAction.WAIT)],
                self._matrices[j, int(NodeAction.RECOVER)],
            )
        return updated
