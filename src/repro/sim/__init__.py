"""Vectorized batch simulation of the node POMDP (``repro.sim``).

This package is the hardware-speed counterpart of the scalar
:class:`~repro.solvers.evaluation.RecoverySimulator`: it advances **B
episodes x N nodes simultaneously** as NumPy array operations instead of one
Python-level step at a time.

Batch layout
------------

All per-stream state and all per-episode results are arrays of shape
``(B, N)``:

* axis 0 (``B``) indexes **episodes** — independent Monte-Carlo rollouts,
  each with its own child of the episode seed tree;
* axis 1 (``N``) indexes **nodes** — the (possibly heterogeneous) members of
  a :class:`~repro.sim.scenario.FleetScenario`, each with its own ``p_A``,
  ``Delta_R``, ``eta`` and observation model.  Mixed container fleets
  (Table 6) are built from per-class templates via
  :meth:`FleetScenario.mixed`, which also labels every slot with its
  :class:`~repro.sim.scenario.NodeClass` for per-class accounting.

One simulation step updates every ``(episode, node)`` stream at once:
batched hidden-state transitions through ``f_N``, batched observation
sampling from ``Z``, the batched two-state belief recursion of Appendix A
(:func:`~repro.core.belief.batch_update_compromise_belief`), batched
strategy application, and batched cost/metric accumulation.

The engine reproduces the scalar simulator **bit for bit** under a shared
seed (see :mod:`repro.sim.engine` for why), so every consumer — Algorithm
1's objective estimator, the Table 2 solver comparison, the Table 7 baseline
sweeps — can switch to the batch path without shifting results.

Layer contract
--------------

* **What is vectorized:** every per-(episode, node) stream of the node
  POMDP — hidden states, observations, beliefs, BTR clocks, strategy
  application, cost/metric accumulation — advances as one ``(B, N)`` array
  operation per step.
* **Scalar reference:** :class:`~repro.solvers.evaluation.RecoverySimulator`
  is kept unchanged as the obviously-correct implementation; the parity
  suite (``tests/test_sim_equivalence.py``) asserts the engine bit-equal to
  it per strategy class.
* **Seeding convention (PR 1):** ``SeedSequence(seed)`` spawns one child
  per ``(episode, node)`` stream, episode-major; both paths consume the
  same children, which is what makes parity exact rather than statistical.
  (This replaced the pre-1.1 single shared generator — same-seed outputs
  differ from version 1.0.0.)

Kernel backends (PR 7)
----------------------

The belief kernels and the closed run loop live in :mod:`repro.sim.kernels`
behind a selectable backend: ``fused`` (default, bit-exact flat-gather
kernels plus a prefix-memoized belief trellis), ``reference`` (the
node-by-node path of PRs 1-6, bit-exact), and ``numba`` (optional JIT,
``pip install .[kernels]``, validated under a versioned tolerance tier).
Select with ``BatchRecoveryEngine(scenario, backend=...)`` or the
``REPRO_ENGINE_BACKEND`` environment variable.

Adversary processes (PR 9)
--------------------------

Attack dynamics are a pluggable seam (:mod:`repro.sim.adversary`): a
:class:`~repro.sim.adversary.AdversaryProcess` on the scenario yields the
per-step ``(B, N)`` compromise pressure.  The default
:class:`~repro.sim.adversary.StaticAdversary` is the paper's i.i.d.
attacker and keeps the static-CDF fast path bit-exact; dynamic adversaries
(:class:`~repro.sim.adversary.CorrelatedAdversary` campaigns,
:class:`~repro.sim.adversary.BurstyAdversary` on/off intensity,
:class:`~repro.sim.adversary.StealthAdversary` alert suppression) rebuild
the transition CDFs per step from salted, episode-sliceable uniform
streams, on every backend.  Scenarios with adversaries round-trip through
the versioned YAML schema (``FleetScenario.from_yaml`` / ``to_yaml``) and
run from the command line via ``python -m repro run scenario.yaml``.

Quickstart::

    from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
    from repro.sim import BatchRecoveryEngine, FleetScenario

    scenario = FleetScenario.single_node(
        NodeParameters(p_a=0.1), BetaBinomialObservationModel(), horizon=200
    )
    result = BatchRecoveryEngine(scenario).run(
        ThresholdStrategy(0.75), num_episodes=1000, seed=0
    )
    print(result.summary())
"""

from ..core.belief import batch_update_compromise_belief
from .adversary import (
    ADVERSARY_TYPES,
    AdversaryProcess,
    BurstyAdversary,
    CorrelatedAdversary,
    StaticAdversary,
    StealthAdversary,
    adversary_from_spec,
    adversary_to_spec,
)
from .engine import BatchEpisodeState, BatchRecoveryEngine, BatchSimulationResult
from .kernels import (
    BeliefTrellis,
    CachedBeliefDynamics,
    EngineProfile,
    available_backends,
    resolve_backend,
    trellis_eligible,
)
from .scenario import FleetScenario, NodeClass
from .strategies import (
    BatchMultiThreshold,
    BatchStrategy,
    LoopedBatchStrategy,
    as_batch_strategy,
)

__all__ = [
    "ADVERSARY_TYPES",
    "AdversaryProcess",
    "BatchEpisodeState",
    "BatchMultiThreshold",
    "BatchRecoveryEngine",
    "BatchSimulationResult",
    "BatchStrategy",
    "BeliefTrellis",
    "BurstyAdversary",
    "CachedBeliefDynamics",
    "CorrelatedAdversary",
    "EngineProfile",
    "FleetScenario",
    "LoopedBatchStrategy",
    "NodeClass",
    "StaticAdversary",
    "StealthAdversary",
    "adversary_from_spec",
    "adversary_to_spec",
    "as_batch_strategy",
    "available_backends",
    "batch_update_compromise_belief",
    "resolve_backend",
    "trellis_eligible",
]
