"""Versioned YAML serialization of fleet scenarios (``repro/scenario-v1``).

The declarative layer of PR 9: a concise, versioned YAML schema describing
everything :class:`~repro.sim.scenario.FleetScenario` holds — fleet classes
with per-class node parameters and observation models, the adversary
process, horizon, BTR enforcement and the tolerance threshold — plus an
optional ``run`` section consumed by the CLI runner (``python -m repro
run``).  One YAML file fully specifies a reproducible experiment.

Schema reference (``schema: repro/scenario-v1``)
------------------------------------------------

.. code-block:: yaml

    schema: repro/scenario-v1
    horizon: 200            # episode length T
    enforce_btr: true       # Eq. 6b periodic-recovery constraint
    f: 1                    # optional tolerance threshold (availability)
    fleet:
      labelled: true        # keep per-slot class labels (mixed fleets)
      classes:
        - name: web-server
          count: 2
          params:           # NodeParameters fields; delta_r: .inf allowed
            p_a: 0.1
            p_c1: 1.0e-05
            p_c2: 0.001
            p_u: 0.02
            eta: 2.0
            delta_r: 9
            k: 1
          observations:     # beta-binomial (Appendix E) ...
            type: beta-binomial
            n: 10
            healthy: {alpha: 0.7, beta: 3.0}
            compromised: {alpha: 1.0, beta: 0.7}
    adversary:              # optional; omitted = static i.i.d. attacker
      type: bursty          # one of repro.sim.adversary.ADVERSARY_TYPES
      p_on: 0.05
      p_off: 0.25
      burst_scale: 5.0
      quiet_scale: 0.2
    run:                    # optional; CLI defaults, overridable by flags
      episodes: 200
      seed: 0
      mode: engine          # engine | closed-loop | emulation
      threshold: 0.75       # engine mode: threshold strategy alpha
      n_jobs: 1

Observation models serialize as ``type: beta-binomial`` (introspected from
:class:`~repro.core.observation.BetaBinomialObservationModel`) or as the
catch-all ``type: discrete`` carrying the explicit per-state pmfs (any
other :class:`~repro.core.observation.ObservationModel` degrades to this,
preserving its matrix).  Floats round-trip at full ``repr`` precision and
``delta_r: .inf`` is YAML's native infinity, so
``FleetScenario.from_yaml(s.to_yaml())`` reconstructs equivalent dynamics.

PyYAML is an optional (test-extra) dependency; it is imported lazily so
``import repro`` works without it.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
import os
from typing import Any, Mapping

from ..core.node_model import NodeParameters
from ..core.observation import (
    BetaBinomialObservationModel,
    DiscreteObservationModel,
    ObservationModel,
)
from .adversary import adversary_from_spec, adversary_to_spec
from .scenario import FleetScenario, NodeClass

__all__ = [
    "SCHEMA",
    "scenario_from_yaml",
    "scenario_to_yaml",
    "scenario_to_mapping",
    "scenario_from_mapping",
    "run_section",
    "load_yaml_document",
]

#: Schema identifier every scenario document must carry.
SCHEMA = "repro/scenario-v1"


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - depends on extras
        raise ImportError(
            "the YAML scenario layer requires PyYAML; install the test "
            "extras (pip install .[test]) or pass parsed mappings instead"
        ) from exc
    return yaml


# -- observation models -----------------------------------------------------------
def _observation_to_spec(model: ObservationModel) -> dict[str, Any]:
    if isinstance(model, BetaBinomialObservationModel):
        return {
            "type": "beta-binomial",
            "n": int(model.healthy_params.n),
            "healthy": {
                "alpha": float(model.healthy_params.alpha),
                "beta": float(model.healthy_params.beta),
            },
            "compromised": {
                "alpha": float(model.compromised_params.alpha),
                "beta": float(model.compromised_params.beta),
            },
        }
    matrix = model.matrix()
    return {
        "type": "discrete",
        "observations": [int(o) for o in model.observations],
        "healthy": [float(p) for p in matrix[0]],
        "compromised": [float(p) for p in matrix[1]],
        "crashed": [float(p) for p in matrix[2]],
    }


def _observation_from_spec(spec: Mapping[str, Any]) -> ObservationModel:
    if not isinstance(spec, Mapping) or "type" not in spec:
        raise ValueError(
            f"observation spec must be a mapping with a 'type' key, got {spec!r}"
        )
    kind = spec["type"]
    if kind == "beta-binomial":
        healthy = spec.get("healthy", {})
        compromised = spec.get("compromised", {})
        return BetaBinomialObservationModel(
            n=int(spec.get("n", 10)),
            healthy_alpha=float(healthy.get("alpha", 0.7)),
            healthy_beta=float(healthy.get("beta", 3.0)),
            compromised_alpha=float(compromised.get("alpha", 1.0)),
            compromised_beta=float(compromised.get("beta", 0.7)),
        )
    if kind == "discrete":
        for key in ("observations", "healthy", "compromised"):
            if key not in spec:
                raise ValueError(f"discrete observation spec requires {key!r}")
        return DiscreteObservationModel(
            observations=[int(o) for o in spec["observations"]],
            healthy_pmf=[float(p) for p in spec["healthy"]],
            compromised_pmf=[float(p) for p in spec["compromised"]],
            crashed_pmf=(
                [float(p) for p in spec["crashed"]] if "crashed" in spec else None
            ),
        )
    raise ValueError(
        f"unknown observation model type {kind!r}; "
        "known types: ['beta-binomial', 'discrete']"
    )


# -- node parameters --------------------------------------------------------------
_PARAM_FIELDS = tuple(f.name for f in dataclass_fields(NodeParameters))


def _params_to_spec(params: NodeParameters) -> dict[str, Any]:
    return {name: getattr(params, name) for name in _PARAM_FIELDS}


def _params_from_spec(spec: Mapping[str, Any]) -> NodeParameters:
    unknown = set(spec) - set(_PARAM_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown node parameter(s) {sorted(unknown)}; "
            f"known: {sorted(_PARAM_FIELDS)}"
        )
    return NodeParameters(**dict(spec))


# -- scenario <-> mapping ---------------------------------------------------------
def scenario_to_mapping(scenario: FleetScenario) -> dict[str, Any]:
    """The plain-dict form of a scenario (what the YAML text serializes)."""
    labelled = scenario.node_labels is not None
    if labelled:
        classes = scenario.node_classes()
    else:
        # Group consecutive identical (params, model) slots into anonymous
        # classes so homogeneous fleets serialize as one concise entry.
        classes = []
        for j in range(scenario.num_nodes):
            params = scenario.node_params[j]
            model = scenario.observation_models[j]
            if classes and classes[-1].params == params and classes[-1].observation_model is model:
                classes[-1] = NodeClass(
                    name=classes[-1].name,
                    params=params,
                    observation_model=model,
                    count=classes[-1].count + 1,
                )
            else:
                classes.append(
                    NodeClass(
                        name=f"class-{len(classes)}",
                        params=params,
                        observation_model=model,
                        count=1,
                    )
                )
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "horizon": int(scenario.horizon),
        "enforce_btr": bool(scenario.enforce_btr),
        "fleet": {
            "labelled": labelled,
            "classes": [
                {
                    "name": c.name,
                    "count": int(c.count),
                    "params": _params_to_spec(c.params),
                    "observations": _observation_to_spec(c.observation_model),
                }
                for c in classes
            ],
        },
    }
    if scenario.f is not None:
        document["f"] = int(scenario.f)
    if scenario.adversary is not None:
        document["adversary"] = adversary_to_spec(scenario.adversary)
    return document


def scenario_from_mapping(document: Mapping[str, Any]) -> FleetScenario:
    """Build a :class:`FleetScenario` from a parsed scenario mapping.

    Accepts either a bare scenario mapping or a full runner document whose
    ``scenario`` key holds one.
    """
    if not isinstance(document, Mapping):
        raise ValueError(f"scenario document must be a mapping, got {type(document).__name__}")
    if "scenario" in document and "fleet" not in document:
        document = document["scenario"]
        if not isinstance(document, Mapping):
            raise ValueError("the 'scenario' section must be a mapping")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"unsupported scenario schema {schema!r}; this version reads {SCHEMA!r}"
        )
    fleet = document.get("fleet")
    if not isinstance(fleet, Mapping) or "classes" not in fleet:
        raise ValueError("scenario requires a 'fleet' mapping with a 'classes' list")
    raw_classes = fleet["classes"]
    if not isinstance(raw_classes, (list, tuple)) or not raw_classes:
        raise ValueError("fleet.classes must be a non-empty list")
    classes = []
    for index, entry in enumerate(raw_classes):
        if not isinstance(entry, Mapping):
            raise ValueError(f"fleet.classes[{index}] must be a mapping, got {entry!r}")
        classes.append(
            NodeClass(
                name=str(entry.get("name", f"class-{index}")),
                params=_params_from_spec(entry.get("params", {})),
                observation_model=_observation_from_spec(entry.get("observations", {})),
                count=int(entry.get("count", 1)),
            )
        )
    adversary = None
    if document.get("adversary") is not None:
        adversary = adversary_from_spec(document["adversary"])
    labelled = bool(fleet.get("labelled", True))
    horizon = int(document.get("horizon", 200))
    enforce_btr = bool(document.get("enforce_btr", True))
    f = document.get("f")
    f = None if f is None else int(f)
    if labelled:
        return FleetScenario.mixed(
            classes,
            horizon=horizon,
            enforce_btr=enforce_btr,
            f=f,
            adversary=adversary,
        )
    params: list[NodeParameters] = []
    models: list[ObservationModel] = []
    for node_class in classes:
        params.extend([node_class.params] * node_class.count)
        models.extend([node_class.observation_model] * node_class.count)
    return FleetScenario(
        tuple(params),
        tuple(models),
        horizon=horizon,
        enforce_btr=enforce_btr,
        f=f,
        adversary=adversary,
    )


def run_section(document: Mapping[str, Any]) -> dict[str, Any]:
    """The (possibly empty) ``run`` section of a parsed runner document."""
    run = document.get("run") if isinstance(document, Mapping) else None
    if run is None:
        return {}
    if not isinstance(run, Mapping):
        raise ValueError("the 'run' section must be a mapping")
    return dict(run)


# -- YAML entry points ------------------------------------------------------------
def load_yaml_document(source) -> Mapping[str, Any]:
    """Parse a YAML path, text, open file, or mapping into a mapping.

    Shared by :func:`scenario_from_yaml` and the CLI runner (which also
    needs the document's ``run`` section).
    """
    return _load_document(source)


def _load_document(source) -> Mapping[str, Any]:
    if isinstance(source, Mapping):
        return source
    yaml = _yaml()
    text = source
    if hasattr(source, "read"):
        text = source.read()
    elif isinstance(source, os.PathLike) or (
        isinstance(source, str)
        and "\n" not in source
        and source.endswith((".yaml", ".yml"))
    ):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        # Surface parse failures as the named ValueError the CLI's error
        # paths catch, instead of a backend-specific exception type.
        raise ValueError(f"malformed scenario YAML: {exc}") from exc
    if not isinstance(document, Mapping):
        raise ValueError(
            "scenario YAML must parse to a mapping, got "
            f"{type(document).__name__}"
        )
    return document


def scenario_from_yaml(source) -> FleetScenario:
    """Build a scenario from a YAML path, YAML text, open file, or mapping."""
    return scenario_from_mapping(_load_document(source))


def scenario_to_yaml(scenario: FleetScenario, path=None) -> str:
    """Serialize a scenario to YAML text (optionally writing it to ``path``)."""
    yaml = _yaml()
    text = yaml.safe_dump(
        scenario_to_mapping(scenario), sort_keys=False, default_flow_style=False
    )
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
