"""Scenario configuration for the batch simulation engine.

A :class:`FleetScenario` describes the population of node POMDPs that one
batch simulation advances: one :class:`~repro.core.node_model.NodeParameters`
and one :class:`~repro.core.observation.ObservationModel` per node, plus the
episode horizon and the BTR enforcement flag shared by all nodes.  Nodes may
be fully heterogeneous (per-node ``p_A``, ``Delta_R``, ``eta``, observation
model), which is what opens the multi-node scenario sweeps of Table 7 /
Figure 12 to the vectorized engine.

All observation models in one scenario must share the same alphabet size so
their pmfs stack into one ``(N, |S|, |O|)`` array; this is the only
homogeneity the engine requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.node_model import NodeParameters, NodeTransitionModel
from ..core.observation import ObservationModel

__all__ = ["FleetScenario"]


@dataclass(frozen=True)
class FleetScenario:
    """Configuration of a batch of ``N`` (possibly heterogeneous) nodes.

    Attributes:
        node_params: Per-node model parameters ``(p_A, Delta_R, eta, ...)``.
        observation_models: Per-node observation models ``Z_i``; all must
            share the same number of observations.
        horizon: Episode length ``T`` in time-steps.
        enforce_btr: Whether the BTR constraint (Eq. 6b) forces a recovery
            every ``Delta_R`` steps, as in the scalar
            :class:`~repro.solvers.evaluation.RecoverySimulator`.
        f: Optional tolerance threshold: when given, the engine additionally
            tracks the fleet availability ``T^(A)`` = fraction of steps with
            at most ``f`` failed nodes (Section III-C).
    """

    node_params: tuple[NodeParameters, ...]
    observation_models: tuple[ObservationModel, ...]
    horizon: int = 200
    enforce_btr: bool = True
    f: int | None = None

    def __post_init__(self) -> None:
        if len(self.node_params) == 0:
            raise ValueError("a scenario requires at least one node")
        if len(self.node_params) != len(self.observation_models):
            raise ValueError("need exactly one observation model per node")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        sizes = {model.num_observations for model in self.observation_models}
        if len(sizes) > 1:
            raise ValueError(
                "all observation models in a scenario must share one alphabet size, "
                f"got {sorted(sizes)}"
            )
        if self.f is not None and self.f < 0:
            raise ValueError("f must be non-negative")

    # -- constructors -----------------------------------------------------------
    @classmethod
    def single_node(
        cls,
        params: NodeParameters,
        observation_model: ObservationModel,
        horizon: int = 200,
        enforce_btr: bool = True,
    ) -> "FleetScenario":
        """Scenario with one node: the batch counterpart of the scalar simulator."""
        return cls((params,), (observation_model,), horizon=horizon, enforce_btr=enforce_btr)

    @classmethod
    def homogeneous(
        cls,
        params: NodeParameters,
        observation_model: ObservationModel,
        num_nodes: int,
        horizon: int = 200,
        enforce_btr: bool = True,
        f: int | None = None,
    ) -> "FleetScenario":
        """Fleet of ``num_nodes`` identical nodes."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return cls(
            (params,) * num_nodes,
            (observation_model,) * num_nodes,
            horizon=horizon,
            enforce_btr=enforce_btr,
            f=f,
        )

    # -- derived quantities -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_params)

    @property
    def num_observations(self) -> int:
        return self.observation_models[0].num_observations

    def transition_models(self) -> list[NodeTransitionModel]:
        """One :class:`~repro.core.node_model.NodeTransitionModel` per node."""
        return [NodeTransitionModel(p) for p in self.node_params]

    def initial_beliefs(self) -> np.ndarray:
        """Per-node initial beliefs ``b_1 = p_A`` (Eq. 6a), shape ``(N,)``."""
        return np.array([p.p_a for p in self.node_params], dtype=float)

    def cost_weights(self) -> np.ndarray:
        """Per-node cost weights ``eta``, shape ``(N,)``."""
        return np.array([p.eta for p in self.node_params], dtype=float)

    def btr_deadlines(self) -> np.ndarray:
        """Per-node step index at which the BTR constraint forces a recovery.

        The scalar simulator forces ``RECOVER`` when ``time_since_recovery
        >= int(Delta_R) - 1``; this returns that per-node bound, with an
        unreachable sentinel for ``Delta_R = inf`` or ``enforce_btr=False``.
        """
        sentinel = np.iinfo(np.int64).max
        deadlines = np.full(self.num_nodes, sentinel, dtype=np.int64)
        if not self.enforce_btr:
            return deadlines
        for j, params in enumerate(self.node_params):
            if params.delta_r != math.inf:
                deadlines[j] = int(params.delta_r) - 1
        return deadlines
