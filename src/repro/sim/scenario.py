"""Scenario configuration for the batch simulation engine.

A :class:`FleetScenario` describes the population of node POMDPs that one
batch simulation advances: one :class:`~repro.core.node_model.NodeParameters`
and one :class:`~repro.core.observation.ObservationModel` per node, plus the
episode horizon and the BTR enforcement flag shared by all nodes.  Nodes may
be fully heterogeneous (per-node ``p_A``, ``Delta_R``, ``eta``, observation
model), which is what opens the multi-node scenario sweeps of Table 7 /
Figure 12 to the vectorized engine.

Mixed container fleets — the paper's actual testbed (Table 6), where
replicas run different images with different vulnerabilities, intrusion
speeds and recovery deadlines — are described as :class:`NodeClass`
templates and expanded by :meth:`FleetScenario.mixed` into per-slot
parameters, with the slot-to-class assignment retained in
:attr:`FleetScenario.node_labels` for per-class accounting downstream
(:class:`~repro.control.TwoLevelResult` class metrics, the per-class
``f_S`` fits of :mod:`repro.control.sysid`).

All observation models in one scenario must share the same alphabet size so
their pmfs stack into one ``(N, |S|, |O|)`` array; this is the only
homogeneity the engine requires.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..core.node_model import NodeParameters, NodeTransitionModel
from ..core.observation import ObservationModel
from .adversary import AdversaryProcess

__all__ = ["NodeClass", "FleetScenario"]


@dataclass(frozen=True)
class NodeClass:
    """One container-image template of a mixed fleet (one Table 6 row).

    Attributes:
        name: Class label (e.g. the container image name); must be unique
            within one :meth:`FleetScenario.mixed` call.
        params: Node model parameters shared by every replica of the class.
        observation_model: The class's IDS observation model ``Z``.
        count: Number of fleet slots instantiated from this template.
    """

    name: str
    params: NodeParameters
    observation_model: ObservationModel
    count: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a node class requires a non-empty name")
        if self.count < 1:
            raise ValueError(
                f"node class {self.name!r} must instantiate at least one slot, "
                f"got count={self.count}"
            )


@dataclass(frozen=True)
class FleetScenario:
    """Configuration of a batch of ``N`` (possibly heterogeneous) nodes.

    Attributes:
        node_params: Per-node model parameters ``(p_A, Delta_R, eta, ...)``.
        observation_models: Per-node observation models ``Z_i``; all must
            share the same number of observations.
        horizon: Episode length ``T`` in time-steps.
        enforce_btr: Whether the BTR constraint (Eq. 6b) forces a recovery
            every ``Delta_R`` steps, as in the scalar
            :class:`~repro.solvers.evaluation.RecoverySimulator`.
        f: Optional tolerance threshold: when given, the engine additionally
            tracks the fleet availability ``T^(A)`` = fraction of steps with
            at most ``f`` failed nodes (Section III-C).
        node_labels: Optional per-slot class labels (slot ``j`` runs the
            container class ``node_labels[j]``), populated by
            :meth:`mixed`; ``None`` for unlabelled scenarios.
        adversary: Optional :class:`~repro.sim.adversary.AdversaryProcess`
            generating the per-step compromise pressure; ``None`` means the
            paper's static i.i.d. attacker (per-node ``p_A`` every step).
    """

    node_params: tuple[NodeParameters, ...]
    observation_models: tuple[ObservationModel, ...]
    horizon: int = 200
    enforce_btr: bool = True
    f: int | None = None
    node_labels: tuple[str, ...] | None = None
    adversary: AdversaryProcess | None = None

    def __post_init__(self) -> None:
        if len(self.node_params) == 0:
            raise ValueError("a scenario requires at least one node")
        if len(self.node_params) != len(self.observation_models):
            raise ValueError("need exactly one observation model per node")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        sizes = {model.num_observations for model in self.observation_models}
        if len(sizes) > 1:
            raise ValueError(
                "all observation models in a scenario must share one alphabet size, "
                f"got {sorted(sizes)}"
            )
        if self.f is not None and self.f < 0:
            raise ValueError("f must be non-negative")
        if self.node_labels is not None and len(self.node_labels) != len(
            self.node_params
        ):
            raise ValueError(
                f"need exactly one class label per node, got "
                f"{len(self.node_labels)} labels for {len(self.node_params)} nodes"
            )

    # -- constructors -----------------------------------------------------------
    @classmethod
    def single_node(
        cls,
        params: NodeParameters,
        observation_model: ObservationModel,
        horizon: int = 200,
        enforce_btr: bool = True,
        adversary: AdversaryProcess | None = None,
    ) -> "FleetScenario":
        """Scenario with one node: the batch counterpart of the scalar simulator."""
        return cls(
            (params,),
            (observation_model,),
            horizon=horizon,
            enforce_btr=enforce_btr,
            adversary=adversary,
        )

    @classmethod
    def homogeneous(
        cls,
        params: NodeParameters,
        observation_model: ObservationModel,
        num_nodes: int,
        horizon: int = 200,
        enforce_btr: bool = True,
        f: int | None = None,
        adversary: AdversaryProcess | None = None,
    ) -> "FleetScenario":
        """Fleet of ``num_nodes`` identical nodes."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return cls(
            (params,) * num_nodes,
            (observation_model,) * num_nodes,
            horizon=horizon,
            enforce_btr=enforce_btr,
            f=f,
            adversary=adversary,
        )

    @classmethod
    def mixed(
        cls,
        classes: Sequence[NodeClass],
        horizon: int = 200,
        enforce_btr: bool = True,
        f: int | None = None,
        adversary: AdversaryProcess | None = None,
    ) -> "FleetScenario":
        """Mixed-container fleet from node-class templates (Table 6 style).

        Expands each :class:`NodeClass` into ``count`` consecutive slots, in
        class order, and records the slot-to-class assignment in
        :attr:`node_labels`.  Cross-class observation-space compatibility is
        validated here with the offending class names in the error (the
        engine needs one shared alert-alphabet size to stack the pmfs).
        """
        if len(classes) == 0:
            raise ValueError("a mixed fleet requires at least one node class")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"node class names must be unique, got {names}")
        sizes = {c.name: c.observation_model.num_observations for c in classes}
        if len(set(sizes.values())) > 1:
            raise ValueError(
                "all node classes must share one observation-alphabet size "
                f"(the engine stacks their pmfs), got {sizes}"
            )
        params: list[NodeParameters] = []
        models: list[ObservationModel] = []
        labels: list[str] = []
        for node_class in classes:
            params.extend([node_class.params] * node_class.count)
            models.extend([node_class.observation_model] * node_class.count)
            labels.extend([node_class.name] * node_class.count)
        return cls(
            tuple(params),
            tuple(models),
            horizon=horizon,
            enforce_btr=enforce_btr,
            f=f,
            node_labels=tuple(labels),
            adversary=adversary,
        )

    # -- derived scenarios -------------------------------------------------------
    def node_classes(self) -> list[NodeClass]:
        """Reconstruct the :class:`NodeClass` templates of a labelled scenario.

        The inverse of :meth:`mixed` (up to slot ordering): one template per
        class in first-appearance order, carrying the class's parameters,
        observation model and slot count.  Requires every slot of a class to
        share one parameter set — which :meth:`mixed` guarantees — so the
        per-class Algorithm 1 optimization of
        :func:`repro.control.optimize_class_deltas` has a well-defined node
        POMDP per class.
        """
        classes: list[NodeClass] = []
        for label, slots in self.class_slots().items():
            params = {self.node_params[j] for j in slots}
            if len(params) != 1:
                raise ValueError(
                    f"slots of class {label!r} carry {len(params)} distinct "
                    f"parameter sets; node_classes() requires one per class"
                )
            classes.append(
                NodeClass(
                    name=label,
                    params=self.node_params[int(slots[0])],
                    observation_model=self.observation_models[int(slots[0])],
                    count=len(slots),
                )
            )
        return classes

    def with_class_deltas(self, deltas: "dict[str, float]") -> "FleetScenario":
        """Scenario with each class's BTR deadline ``Delta_R`` replaced.

        ``deltas`` maps class labels to new deadlines (missing labels keep
        their current ``Delta_R``); every slot of a class gets its class's
        deadline.  This is how the per-class Algorithm 1 deadlines of
        :func:`repro.control.optimize_class_deltas` are routed back into
        the closed loop.
        """
        if self.node_labels is None:
            raise ValueError(
                "per-class deadlines require a labelled scenario; build it "
                "with FleetScenario.mixed(...)"
            )
        unknown = set(deltas) - set(self.node_labels)
        if unknown:
            raise ValueError(
                f"deltas name classes {sorted(unknown)} that the scenario "
                f"does not define (available: {sorted(set(self.node_labels))})"
            )
        updated = tuple(
            p.with_updates(delta_r=deltas[label]) if label in deltas else p
            for p, label in zip(self.node_params, self.node_labels)
        )
        return replace(self, node_params=updated)

    def scale_attack(self, intensity: float) -> "FleetScenario":
        """Scenario with every node's ``p_A`` scaled by ``intensity``.

        The attacker-intensity axis of the control-plane sweeps: each
        node keeps its class identity (crash rates, ``Delta_R``, ``eta``,
        observation model, label) while its compromise probability becomes
        ``min(1, intensity * p_A)``.  Nodes whose scaled probability exceeds
        1.0 are clipped — and named in a :class:`RuntimeWarning`, because a
        clipped sweep point no longer scales linearly with ``intensity``.
        """
        if intensity < 0.0:
            raise ValueError(f"intensity must be non-negative, got {intensity}")
        clipped = [
            self.node_labels[j] if self.node_labels is not None else f"node {j}"
            for j, p in enumerate(self.node_params)
            if intensity * p.p_a > 1.0
        ]
        if clipped:
            named = ", ".join(dict.fromkeys(clipped))
            warnings.warn(
                f"scale_attack({intensity}) clips p_A at 1.0 for "
                f"{len(clipped)} node slot(s): {named}",
                RuntimeWarning,
                stacklevel=2,
            )
        scaled = tuple(
            p.with_updates(p_a=min(1.0, intensity * p.p_a)) for p in self.node_params
        )
        return replace(self, node_params=scaled)

    # -- declarative layer -------------------------------------------------------
    @classmethod
    def from_yaml(cls, source) -> "FleetScenario":
        """Build a scenario from a YAML file path, text, or parsed mapping.

        Accepts either a bare scenario mapping (``schema``, ``fleet``,
        ``horizon``, ...) or a full runner document with a ``scenario:``
        section; see :mod:`repro.sim.scenario_io` for the schema reference.
        """
        from .scenario_io import scenario_from_yaml

        return scenario_from_yaml(source)

    def to_yaml(self, path=None) -> str:
        """Serialize to the versioned YAML scenario schema.

        Returns the YAML text; when ``path`` is given, also writes it there.
        ``FleetScenario.from_yaml(scenario.to_yaml())`` reconstructs an
        equivalent scenario (identical parameters, labels, adversary and
        observation matrices).
        """
        from .scenario_io import scenario_to_yaml

        return scenario_to_yaml(self, path)

    # -- derived quantities -----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_params)

    @property
    def num_observations(self) -> int:
        """The shared observation-alphabet size ``|O|``.

        Defensive counterpart of the constructor validation: raises (rather
        than silently reporting node 0's size) if the per-node models ever
        disagree, so a mismatched fleet cannot mis-shape downstream arrays.
        """
        sizes = {model.num_observations for model in self.observation_models}
        if len(sizes) > 1:
            raise ValueError(
                "observation models disagree on the alphabet size, "
                f"got {sorted(sizes)}"
            )
        return sizes.pop()

    def class_slots(self) -> dict[str, np.ndarray]:
        """Slot indices per node class, in first-appearance order.

        Requires a labelled scenario (built via :meth:`mixed` or with
        explicit ``node_labels``).
        """
        if self.node_labels is None:
            raise ValueError(
                "scenario has no node-class labels; build it with "
                "FleetScenario.mixed(...) or pass node_labels explicitly"
            )
        slots: dict[str, list[int]] = {}
        for j, label in enumerate(self.node_labels):
            slots.setdefault(label, []).append(j)
        return {
            label: np.asarray(indices, dtype=np.int64)
            for label, indices in slots.items()
        }

    def transition_models(self) -> list[NodeTransitionModel]:
        """One :class:`~repro.core.node_model.NodeTransitionModel` per node."""
        return [NodeTransitionModel(p) for p in self.node_params]

    def initial_beliefs(self) -> np.ndarray:
        """Per-node initial beliefs ``b_1 = p_A`` (Eq. 6a), shape ``(N,)``."""
        return np.array([p.p_a for p in self.node_params], dtype=float)

    def cost_weights(self) -> np.ndarray:
        """Per-node cost weights ``eta``, shape ``(N,)``."""
        return np.array([p.eta for p in self.node_params], dtype=float)

    def btr_deadlines(self) -> np.ndarray:
        """Per-node step index at which the BTR constraint forces a recovery.

        The scalar simulator forces ``RECOVER`` when ``time_since_recovery
        >= int(Delta_R) - 1``; this returns that per-node bound, with an
        unreachable sentinel for ``Delta_R = inf`` or ``enforce_btr=False``.
        """
        sentinel = np.iinfo(np.int64).max
        deadlines = np.full(self.num_nodes, sentinel, dtype=np.int64)
        if not self.enforce_btr:
            return deadlines
        for j, params in enumerate(self.node_params):
            if params.delta_r != math.inf:
                deadlines[j] = int(params.delta_r) - 1
        return deadlines
