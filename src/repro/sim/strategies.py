"""Batched recovery strategies: array-in, array-out strategy application.

The batch engine applies one recovery strategy to a whole batch of episodes
at once.  A *batch strategy* maps a ``(B,)`` array of beliefs and a ``(B,)``
array of times-since-recovery to a ``(B,)`` boolean recover mask.  Three
sources of batch strategies exist:

* the core strategy classes of :mod:`repro.core.strategies` expose
  ``action_batch`` and are used directly;
* :class:`BatchMultiThreshold` additionally supports a *per-episode*
  threshold matrix of shape ``(B, d)``, which is how Algorithm 1 evaluates a
  whole optimizer population (candidate ``k`` occupies episodes
  ``k*M..(k+1)*M-1``) in a single simulation;
* :class:`LoopedBatchStrategy` wraps any scalar
  :class:`~repro.core.strategies.RecoveryStrategy` (e.g. a PPO policy) with
  an element-wise loop, trading speed for full generality.

:func:`as_batch_strategy` dispatches between these automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.node_model import NodeAction
from ..core.strategies import RecoveryStrategy

__all__ = [
    "BatchStrategy",
    "BatchMultiThreshold",
    "LoopedBatchStrategy",
    "as_batch_strategy",
]


@runtime_checkable
class BatchStrategy(Protocol):
    """Interface of a batched recovery strategy."""

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        """Boolean recover mask for a batch of ``(belief, time)`` pairs."""
        ...


@dataclass(frozen=True)
class BatchMultiThreshold:
    """Batched multi-threshold strategy with optionally per-episode thresholds.

    ``thresholds`` has shape ``(d,)`` (one threshold vector shared by the
    whole batch, the batched form of
    :class:`~repro.core.strategies.MultiThresholdStrategy`) or ``(B, d)``
    (one threshold vector per episode, used to evaluate an optimizer
    population in one simulation).  At time ``t`` since the last recovery
    the threshold ``theta_{min(t, d-1)}`` applies, exactly as in the scalar
    strategy.
    """

    thresholds: np.ndarray

    def __post_init__(self) -> None:
        thresholds = np.asarray(self.thresholds, dtype=float)
        if thresholds.ndim not in (1, 2) or thresholds.shape[-1] == 0:
            raise ValueError("thresholds must have shape (d,) or (B, d) with d >= 1")
        if np.any(thresholds < 0.0) or np.any(thresholds > 1.0):
            raise ValueError("thresholds must lie in [0, 1]")
        object.__setattr__(self, "thresholds", thresholds)

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        beliefs = np.asarray(beliefs)
        indices = np.clip(np.asarray(time_since_recovery), 0, self.thresholds.shape[-1] - 1)
        if self.thresholds.ndim == 1:
            active = self.thresholds[indices]
        else:
            if beliefs.shape[0] != self.thresholds.shape[0]:
                raise ValueError(
                    "per-episode thresholds require one row per batch element, got "
                    f"{self.thresholds.shape[0]} rows for batch size {beliefs.shape[0]}"
                )
            active = self.thresholds[np.arange(self.thresholds.shape[0]), indices]
        return beliefs >= active


@dataclass(frozen=True)
class LoopedBatchStrategy:
    """Element-wise fallback: apply a scalar strategy to each batch element.

    Correct for arbitrary :class:`~repro.core.strategies.RecoveryStrategy`
    implementations (including stateless learned policies such as the PPO
    policy), at scalar-loop speed.  The engine stays exact because the
    strategy sees exactly the beliefs the scalar simulator would produce.
    """

    strategy: RecoveryStrategy

    def action_batch(
        self, beliefs: np.ndarray, time_since_recovery: np.ndarray
    ) -> np.ndarray:
        recover = int(NodeAction.RECOVER)
        return np.fromiter(
            (
                int(self.strategy.action(float(b), int(t))) == recover
                for b, t in zip(beliefs, time_since_recovery)
            ),
            dtype=bool,
            count=len(beliefs),
        )


def as_batch_strategy(strategy: RecoveryStrategy | BatchStrategy) -> BatchStrategy:
    """Return a batched view of ``strategy``.

    Objects already exposing ``action_batch`` (all core strategy classes and
    the classes in this module) are returned unchanged; anything else is
    wrapped in a :class:`LoopedBatchStrategy`.
    """
    if isinstance(strategy, BatchStrategy):
        return strategy
    return LoopedBatchStrategy(strategy)
