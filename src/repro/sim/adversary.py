"""Pluggable adversary processes: the attack-dynamics seam of the engine.

The paper's node model folds the attacker into a single static per-node
compromise probability ``p_A`` (Eq. 2): every step, every node is attacked
i.i.d. with the same intensity.  This module lifts that assumption into a
first-class abstraction: an :class:`AdversaryProcess` is a *process* that,
given the episode step and its own pre-drawn RNG stream, yields the
per-stream **compromise pressure** — the effective ``p_A`` value of shape
``(B, N)`` used for this step's hidden-state transition — and, optionally,
an alert-suppression mask that hides compromise evidence from the IDS.

Contract
--------

Adversaries are **frozen dataclasses**: stateless, hashable, picklable and
serializable to the YAML scenario schema (:mod:`repro.sim.scenario_io`).
All mutable per-batch state lives in the object returned by :meth:`begin`,
which the engine stores on its :class:`~repro.sim.engine.BatchEpisodeState`
and threads back into the per-step hooks.  An adversary implements:

* ``is_static`` — ``True`` iff the pressure equals the scenario baseline at
  every step.  Static adversaries take the engine's precompiled-CDF fast
  path (kernel rank tables, belief trellis) untouched and are **bit-exact**
  with the pre-seam engine by construction; dynamic adversaries route
  through a per-step CDF construction that reproduces
  :meth:`~repro.core.node_model.NodeTransitionModel._build_matrices`
  bit-for-bit when the pressure equals the baseline.
* ``uniforms_per_step(num_nodes)`` — how many uniform doubles the adversary
  consumes per episode per step.  The engine pre-draws them into a
  ``(B, horizon, K)`` buffer so batched, scalar-replay (``[b : b + 1]``)
  and sharded (``[lo : hi)``) runs all see identical streams.
* ``compromise_pressure(state, t, baseline, uniforms)`` — the ``(B, N)``
  effective compromise probability for step ``t``; ``baseline`` is the
  per-node ``p_A`` vector and ``uniforms`` the ``(B, K)`` slice for this
  step (``None`` when ``K == 0``).
* ``alert_suppression(state, t, uniforms)`` — optional ``(B, N)`` boolean
  mask; where ``True`` *and* the node is compromised, the engine draws the
  step's observation from the HEALTHY alert distribution instead (the
  attacker suppresses its alert footprint).  The observation uniform is
  consumed either way, so suppression never shifts the random streams.

Randomness
----------

Adversary uniforms come from a **salted** seed root,
``SeedSequence([_ADVERSARY_SALT, entropy], spawn_key=(b,))`` per episode
``b``, so they never collide with the engine's per-``(episode, node)``
streams (children of ``SeedSequence(entropy)``) or the system controllers'
streams.  Episode rows are independent, which is what makes the scalar
reference replay and the PR-8 shard pool bit-identical to a monolithic run.

The defender's belief recursion intentionally stays on the scenario's
*nominal* model: controllers do not know the true attacker, so a bursty or
correlated campaign is a model-mismatch experiment by design.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

import numpy as np

__all__ = [
    "AdversaryProcess",
    "StaticAdversary",
    "CorrelatedAdversary",
    "BurstyAdversary",
    "StealthAdversary",
    "ADVERSARY_TYPES",
    "adversary_from_spec",
    "adversary_to_spec",
    "draw_adversary_uniforms",
    "resolve_adversary_entropy",
]

#: Salt prepended to the run entropy so adversary streams are independent of
#: the engine's episode streams and the controllers' system streams.
_ADVERSARY_SALT = 0x5EED_AD7E


def resolve_adversary_entropy(seed: int | None) -> int:
    """A concrete entropy value for the adversary seed tree.

    ``None`` draws fresh OS entropy (the run is then non-reproducible,
    matching the engine's ``seed=None`` convention); integers pass through.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    return int(seed)


def draw_adversary_uniforms(
    adversary: "AdversaryProcess",
    entropy: int,
    lo: int,
    hi: int,
    num_nodes: int,
    horizon: int,
) -> np.ndarray | None:
    """Pre-draw the adversary uniforms for episodes ``[lo, hi)``.

    Returns a ``(hi - lo, horizon, K)`` buffer with
    ``K = adversary.uniforms_per_step(num_nodes)``, or ``None`` when the
    adversary consumes no randomness.  Row ``b - lo`` is a pure function of
    ``(entropy, b)``, so shards and scalar replays reproduce the exact rows
    of a monolithic draw.
    """
    width = adversary.uniforms_per_step(num_nodes)
    if width == 0:
        return None
    if entropy is None:
        raise ValueError("adversary uniforms require a concrete entropy/seed")
    buffer = np.empty((hi - lo, horizon, width))
    for b in range(lo, hi):
        sequence = np.random.SeedSequence(
            [_ADVERSARY_SALT, int(entropy)], spawn_key=(b,)
        )
        buffer[b - lo] = np.random.default_rng(sequence).random((horizon, width))
    return buffer


class AdversaryProcess:
    """Base contract; see the module docstring for hook semantics."""

    #: Registry key used by the YAML schema (overridden per subclass).
    kind: str = "abstract"

    @property
    def is_static(self) -> bool:
        """Whether the pressure equals the baseline ``p_A`` at every step."""
        return False

    def uniforms_per_step(self, num_nodes: int) -> int:
        """Uniform doubles consumed per episode per step."""
        return 0

    def begin(self, num_episodes: int, num_nodes: int) -> Any:
        """Allocate the mutable per-batch state (``None`` for stateless)."""
        return None

    def compromise_pressure(
        self,
        state: Any,
        t: int,
        baseline: np.ndarray,
        uniforms: np.ndarray | None,
    ) -> np.ndarray:
        """Effective per-stream ``p_A`` for step ``t``, shape ``(B, N)``."""
        raise NotImplementedError

    def alert_suppression(
        self,
        state: Any,
        t: int,
        uniforms: np.ndarray | None,
    ) -> np.ndarray | None:
        """Optional ``(B, N)`` mask of streams whose alerts are suppressed."""
        return None


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability, got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class StaticAdversary(AdversaryProcess):
    """The paper's attacker: i.i.d. per-node pressure equal to ``p_A``.

    The default adversary of every scenario.  With ``force_dynamic=False``
    (the default) the engine keeps its precompiled static-CDF fast path —
    trivially bit-exact with the pre-seam engine.  ``force_dynamic=True`` is
    a diagnostic knob: the pressure is still the baseline, but the engine
    routes through the dynamic per-step CDF construction, which the parity
    suite asserts is bit-identical to the static tables.
    """

    kind = "static"
    force_dynamic: bool = False

    @property
    def is_static(self) -> bool:
        return not self.force_dynamic

    def compromise_pressure(self, state, t, baseline, uniforms):
        del state, t, uniforms
        return baseline

    def begin(self, num_episodes, num_nodes):
        return None


@dataclass(frozen=True)
class CorrelatedAdversary(AdversaryProcess):
    """Correlated multi-node campaign: a shared latent intensity per episode.

    A two-state (calm / campaign) Markov chain, **common to every node of an
    episode**, modulates the baseline: during a campaign every node's
    pressure is ``min(1, campaign_scale * p_A)`` simultaneously.  The
    cross-node correlation this induces cannot be expressed by any per-node
    ``p_A`` assignment, which all factorize across nodes.

    Attributes:
        p_enter: Per-step probability that a calm episode enters a campaign.
        p_exit: Per-step probability that a campaign ends.
        campaign_scale: Pressure multiplier while the campaign is active.
        calm_scale: Pressure multiplier while calm (``1.0`` = baseline).
    """

    kind = "correlated"
    p_enter: float = 0.05
    p_exit: float = 0.15
    campaign_scale: float = 4.0
    calm_scale: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("p_enter", self.p_enter)
        _check_probability("p_exit", self.p_exit)
        _check_non_negative("campaign_scale", self.campaign_scale)
        _check_non_negative("calm_scale", self.calm_scale)

    def uniforms_per_step(self, num_nodes: int) -> int:
        return 1

    def begin(self, num_episodes, num_nodes):
        return {"campaign": np.zeros(num_episodes, dtype=bool)}

    def compromise_pressure(self, state, t, baseline, uniforms):
        u = uniforms[:, 0]
        campaign = state["campaign"]
        campaign = np.where(campaign, u >= self.p_exit, u < self.p_enter)
        state["campaign"] = campaign
        scale = np.where(campaign, self.campaign_scale, self.calm_scale)
        return np.minimum(baseline[None, :] * scale[:, None], 1.0)


@dataclass(frozen=True)
class BurstyAdversary(AdversaryProcess):
    """Bursty time-varying attacker: per-node on/off Markov-modulated ``p_A``.

    Each ``(episode, node)`` stream carries an independent two-state Markov
    chain; while *on* the node's pressure is ``min(1, burst_scale * p_A)``,
    while *off* it is ``quiet_scale * p_A``.  The long-run average intensity
    can match the static attacker while the arrival process is heavily
    clustered — precisely the regime where reactive recovery under-performs
    its i.i.d. evaluation.

    Attributes:
        p_on: Per-step off -> on transition probability.
        p_off: Per-step on -> off transition probability.
        burst_scale: Pressure multiplier while on.
        quiet_scale: Pressure multiplier while off.
    """

    kind = "bursty"
    p_on: float = 0.05
    p_off: float = 0.25
    burst_scale: float = 5.0
    quiet_scale: float = 0.2

    def __post_init__(self) -> None:
        _check_probability("p_on", self.p_on)
        _check_probability("p_off", self.p_off)
        _check_non_negative("burst_scale", self.burst_scale)
        _check_non_negative("quiet_scale", self.quiet_scale)

    def uniforms_per_step(self, num_nodes: int) -> int:
        return num_nodes

    def begin(self, num_episodes, num_nodes):
        return {"on": np.zeros((num_episodes, num_nodes), dtype=bool)}

    def compromise_pressure(self, state, t, baseline, uniforms):
        on = state["on"]
        on = np.where(on, uniforms >= self.p_off, uniforms < self.p_on)
        state["on"] = on
        scale = np.where(on, self.burst_scale, self.quiet_scale)
        return np.minimum(baseline[None, :] * scale, 1.0)


@dataclass(frozen=True)
class StealthAdversary(AdversaryProcess):
    """Stealth attacker: compromises at scaled pressure, then hides.

    Every step, each compromised node's alert emission is suppressed with
    probability ``suppression``: the IDS observation is drawn from the
    HEALTHY alert distribution instead of the compromised one, so the
    defender's belief barely rises and threshold recovery fires late.  The
    pressure itself is the baseline scaled by ``scale``.

    Attributes:
        suppression: Per-step probability a compromised node emits healthy-
            looking alerts.
        scale: Pressure multiplier applied to the baseline ``p_A``.
    """

    kind = "stealth"
    suppression: float = 0.8
    scale: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("suppression", self.suppression)
        _check_non_negative("scale", self.scale)

    def uniforms_per_step(self, num_nodes: int) -> int:
        return num_nodes

    def begin(self, num_episodes, num_nodes):
        return None

    def compromise_pressure(self, state, t, baseline, uniforms):
        del state, t, uniforms
        return np.minimum(baseline * self.scale, 1.0)

    def alert_suppression(self, state, t, uniforms):
        del state, t
        return uniforms < self.suppression


#: YAML / CLI registry: ``type`` key -> adversary class.
ADVERSARY_TYPES: dict[str, type[AdversaryProcess]] = {
    cls.kind: cls
    for cls in (StaticAdversary, CorrelatedAdversary, BurstyAdversary, StealthAdversary)
}


def adversary_to_spec(adversary: AdversaryProcess) -> dict[str, Any]:
    """Serialize an adversary to its YAML mapping (``type`` + parameters)."""
    spec: dict[str, Any] = {"type": adversary.kind}
    for field_ in fields(adversary):
        spec[field_.name] = getattr(adversary, field_.name)
    return spec


def adversary_from_spec(spec: Mapping[str, Any]) -> AdversaryProcess:
    """Build an adversary from its YAML mapping.

    The mapping must carry a ``type`` key naming a registered adversary;
    the remaining keys are the dataclass parameters.
    """
    if not isinstance(spec, Mapping) or "type" not in spec:
        raise ValueError(f"adversary spec must be a mapping with a 'type' key, got {spec!r}")
    params = dict(spec)
    kind = params.pop("type")
    cls = ADVERSARY_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown adversary type {kind!r}; known types: {sorted(ADVERSARY_TYPES)}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(f"invalid parameters for adversary {kind!r}: {exc}") from exc
