#!/usr/bin/env python3
"""Quickstart: compute the two TOLERANCE control strategies and run the system.

This example walks through the paper's workflow end to end on a small instance:

1. fit/choose an intrusion detection model Z (here: the Beta-Binomial model
   of Appendix E);
2. solve Problem 1 (optimal intrusion recovery) with Algorithm 1 + CEM to get
   a belief-threshold recovery strategy (Theorem 1);
3. solve Problem 2 (optimal replication factor) with Algorithm 2 (the
   occupancy-measure LP) to get a replication strategy (Theorem 2);
4. deploy both strategies in the emulation environment and report the
   intrusion-tolerance metrics T^(A), T^(R), F^(R).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro.core import (
    BetaBinomialObservationModel,
    BinomialSystemModel,
    NodeParameters,
    ThresholdStrategy,
)
from repro.emulation import EmulationConfig, EmulationEnvironment, tolerance_policy
from repro.solvers import CrossEntropyMethod, solve_recovery_problem, solve_replication_lp


def main() -> None:
    # ------------------------------------------------------------------ step 1
    params = NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02, eta=2.0,
                            delta_r=math.inf)
    detection_model = BetaBinomialObservationModel()
    print("Theorem 1 assumptions satisfied:",
          params.satisfies_theorem_1_assumptions()
          and detection_model.satisfies_assumption_d()
          and detection_model.satisfies_assumption_e())

    # ------------------------------------------------------------------ step 2
    print("\nSolving Problem 1 (optimal intrusion recovery) with Algorithm 1 + CEM ...")
    recovery = solve_recovery_problem(
        params,
        detection_model,
        CrossEntropyMethod(population_size=30, iterations=10),
        horizon=100,
        episodes_per_evaluation=5,
        seed=0,
    )
    alpha = recovery.strategy.thresholds[0]
    print(f"  recovery threshold alpha* = {alpha:.2f}")
    print(f"  estimated cost J_i        = {recovery.estimated_cost:.3f}")
    print(f"  solver wall-clock         = {recovery.wall_clock_seconds:.1f}s")

    # ------------------------------------------------------------------ step 3
    print("\nSolving Problem 2 (optimal replication factor) with Algorithm 2 (LP) ...")
    system_model = BinomialSystemModel(
        smax=13, f=1, per_node_failure_probability=0.15,
        regeneration_probability=0.05, epsilon_a=0.9,
    )
    replication = solve_replication_lp(system_model)
    print(f"  expected number of nodes J = {replication.expected_cost:.2f}")
    print(f"  achieved availability      = {replication.availability:.3f}")
    print("  pi(add | s):",
          {s: round(replication.strategy.add_probability(s), 2) for s in range(6)})

    # ------------------------------------------------------------------ step 4
    print("\nDeploying both strategies in the emulation environment ...")
    config = EmulationConfig(initial_nodes=3, horizon=300, delta_r=math.inf,
                             node_params=params)
    policy = tolerance_policy(alpha=alpha, replication_strategy=replication.strategy)
    # Use the recovery threshold found by Algorithm 1.
    policy.recovery_strategy_factory = lambda node_id: ThresholdStrategy(alpha)
    environment = EmulationEnvironment(config, policy, seed=1)
    metrics = environment.run()

    print("  intrusion tolerance metrics over", metrics.episode_length, "time-steps:")
    print(f"    average availability      T(A) = {metrics.availability:.3f}")
    print(f"    average time-to-recovery  T(R) = {metrics.time_to_recovery:.2f} steps")
    print(f"    recovery frequency        F(R) = {metrics.recovery_frequency:.3f}")
    print(f"    average number of nodes        = {metrics.average_nodes:.1f}")
    print("  Proposition 1 invariant violations:",
          environment.auditor.violation_counts() or "none")


if __name__ == "__main__":
    main()
