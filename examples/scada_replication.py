#!/usr/bin/env python3
"""Intrusion-tolerant SCADA-style service on MinBFT with feedback recovery.

The paper motivates TOLERANCE with safety-critical applications such as
SCADA systems for the power grid.  This example builds that scenario with
the consensus substrate directly:

* a MinBFT replica group stores breaker set-points (a replicated key-value
  service, Section VII-B);
* an operator client issues signed commands and waits for f + 1 matching
  replies;
* an attacker compromises a replica mid-run and makes it behave Byzantine
  (corrupted protocol messages);
* the node controller detects the intrusion from the alert stream and
  recovers the replica (new container + state transfer);
* the system controller evicts a crashed replica and adds a fresh one
  through the reconfigurable join/evict protocol (Fig. 17 e-f).

Throughout, the example checks the Safety property: all healthy replicas
execute the same sequence of commands.

Run with:  python examples/scada_replication.py
"""

from __future__ import annotations

import numpy as np

from repro.consensus import ByzantineBehavior, MinBFTClient, MinBFTCluster, MinBFTConfig
from repro.core import (
    BetaBinomialObservationModel,
    NodeController,
    NodeParameters,
    NodeState,
    ThresholdStrategy,
    check_safety,
)


def main() -> None:
    rng = np.random.default_rng(7)

    print("Starting a 4-replica MinBFT group (tolerates f = 1 hybrid failure) ...")
    cluster = MinBFTCluster(num_replicas=4, config=MinBFTConfig(view_change_timeout=15), seed=7)
    operator = MinBFTClient("operator", cluster)

    print("Writing breaker set-points ...")
    for breaker, setpoint in [("breaker-12", "open"), ("breaker-17", "closed")]:
        result = operator.write_and_wait(breaker, setpoint)
        print(f"  {breaker} <- {setpoint}  (quorum reply: {result.result})")

    # ------------------------------------------------------------------ intrusion
    target = "replica-2"
    print(f"\nAttacker compromises {target}: it now sends corrupted protocol messages.")
    cluster.compromise(target, ByzantineBehavior.ARBITRARY)

    # The node controller of the compromised replica sees elevated IDS alerts.
    detection_model = BetaBinomialObservationModel()
    controller = NodeController(
        node_id=target,
        params=NodeParameters(p_a=0.1),
        observation_model=detection_model,
        strategy=ThresholdStrategy(0.75),
    )
    step = 0
    while True:
        step += 1
        # Alerts are drawn from the compromised-state distribution.
        observation = detection_model.sample(NodeState.COMPROMISED, rng)
        action, belief = controller.step(observation)
        print(f"  step {step}: o={observation}, belief={belief:.2f}, action={action.symbol}")
        if action.name == "RECOVER":
            break
    print(f"Node controller triggers recovery of {target} after {step} steps.")
    cluster.recover_replica(target)

    result = operator.write_and_wait("breaker-12", "closed")
    print(f"Service still correct after recovery: breaker-12 <- {result.result}")

    # ------------------------------------------------------------------ crash + reconfiguration
    crashed = "replica-3"
    print(f"\n{crashed} crashes; the system controller evicts it and adds a new replica.")
    cluster.crash(crashed)
    cluster.evict_replica(crashed)
    new_replica = cluster.add_replica()
    print(f"  membership is now {cluster.membership} (joined: {new_replica})")

    result = operator.write_and_wait("breaker-17", "open")
    print(f"Service still correct after reconfiguration: breaker-17 <- {result.result}")

    # ------------------------------------------------------------------ safety audit
    cluster.run(ticks=50)
    healthy_sequences = [
        replica.state_machine.executed_requests()
        for replica_id, replica in cluster.replicas.items()
        if replica.byzantine is ByzantineBehavior.NONE
        and not cluster.network.is_crashed(replica_id)
    ]
    print("\nSafety (identical request sequences on healthy replicas):",
          check_safety(healthy_sequences))
    digests = {
        replica_id: replica.state_machine.state_digest()[:12]
        for replica_id, replica in cluster.replicas.items()
        if not cluster.network.is_crashed(replica_id)
    }
    print("State digests:", digests)


if __name__ == "__main__":
    main()
