#!/usr/bin/env python3
"""The full two-level feedback loop: emulation + consensus + both controllers.

This example runs the integrated :class:`ToleranceArchitecture` (Fig. 2 of
the paper): emulated nodes with IDS alert streams and an active attacker,
node controllers performing belief-based recovery, a system controller
(backed by a Raft log) managing the replication factor, and a MinBFT replica
group serving a client workload whose safety and validity are audited at the
end of the run.

It then contrasts the TOLERANCE strategy with the NO-RECOVERY baseline on
the same workload, reproducing in miniature the comparison of Table 7.

Run with:  python examples/two_level_control_loop.py
"""

from __future__ import annotations

from repro.core import NodeParameters, ThresholdStrategy, ToleranceArchitecture
from repro.emulation import EmulationConfig, no_recovery_policy, tolerance_policy


def run_once(policy, label: str) -> None:
    print(f"\n--- running the integrated architecture with the {label} policy ---")
    architecture = ToleranceArchitecture(
        config=EmulationConfig(
            initial_nodes=4,
            horizon=25,
            node_params=NodeParameters(p_a=0.1),
        ),
        policy=policy,
        requests_per_step=2.0,
        seed=42,
    )
    report = architecture.run()

    print(f"  availability T(A)              = {report.metrics.availability:.2f}")
    print(f"  time-to-recovery T(R)          = {report.metrics.time_to_recovery:.1f} steps")
    print(f"  recovery frequency F(R)        = {report.metrics.recovery_frequency:.3f}")
    print(f"  client requests completed      = {report.requests_completed}/{report.requests_submitted}")
    print(f"  safety holds                   = {report.safety_holds}")
    print(f"  validity holds                 = {report.validity_holds}")
    print(f"  controller decisions in Raft   = {report.controller_log_entries}")
    violations = report.invariant_violations or {}
    print(f"  Proposition 1 violations       = {violations if violations else 'none'}")


def run_batched_control_plane() -> None:
    """The same two-level loop, batched: 200 fleet episodes at once.

    System identification fits the empirical CMDP kernel f_S from the
    vectorized fleet environment, Algorithm 2 solves for the replication
    strategy on the estimate, and the TwoLevelController re-evaluates it in
    closed loop — the repro.control pipeline that replaces per-episode
    emulation runs for fleet-scale sweeps.
    """
    from repro.control import TwoLevelController, identify_replication_strategies
    from repro.core import BetaBinomialObservationModel
    from repro.sim import FleetScenario

    print("\n--- batched control plane: 200 closed-loop fleet episodes ---")
    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05),
        BetaBinomialObservationModel(),
        num_nodes=7,
        horizon=200,
        f=1,
    )
    sysid = identify_replication_strategies(
        scenario, ThresholdStrategy(0.75), epsilon_a=0.5, seed=0, initial_nodes=4
    )
    controller = TwoLevelController(
        scenario,
        num_envs=200,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=sysid.lagrangian.strategy if sysid.lagrangian else None,
        initial_nodes=4,
    )
    result = controller.run(seed=0)
    summary = result.summary()
    print(f"  availability T(A)              = {summary['availability'][0]:.2f}")
    print(f"  average nodes J                = {summary['average_nodes'][0]:.2f}")
    print(f"  recovery frequency F(R)        = {summary['recovery_frequency'][0]:.3f}")
    print(f"  emergency additions / episode  = {result.emergency_additions.mean():.1f}")
    print(f"  evictions / episode            = {result.evictions.mean():.1f}")


def run_mixed_fleet() -> None:
    """A heterogeneous (Table 6 style) fleet through the same closed loop.

    Two container classes — a hardened image and a vulnerable one — run in
    one fleet; every slot uses its own p_A / Delta_R / eta, and the result
    reports per-class metrics alongside an attacker-intensity sweep.
    """
    from repro.control import ClosedLoopCell, attacker_intensity_sweep
    from repro.core import BetaBinomialObservationModel
    from repro.sim import FleetScenario, NodeClass

    print("\n--- mixed container fleet: per-class metrics + attacker sweep ---")
    model = BetaBinomialObservationModel()
    scenario = FleetScenario.mixed(
        [
            NodeClass(
                "hardened",
                NodeParameters(p_a=0.05, p_c1=0.01, p_c2=0.04, eta=1.5, delta_r=25),
                model,
                count=3,
            ),
            NodeClass(
                "vulnerable",
                NodeParameters(p_a=0.2, p_c1=0.02, p_c2=0.08, eta=3.0, delta_r=10),
                model,
                count=3,
            ),
        ],
        horizon=150,
        f=1,
    )
    table = attacker_intensity_sweep(
        scenario,
        intensities=(0.5, 1.0, 2.0),
        cells=[ClosedLoopCell("tolerance", ThresholdStrategy(0.75))],
        num_envs=100,
        seed=0,
        initial_nodes=4,
    )
    for (intensity, _), result in sorted(table.items()):
        summary = result.summary()
        classes = result.class_summary()
        print(
            f"  attacker x{intensity:g}: T(A)={summary['availability'][0]:.2f}  "
            f"F(R) hardened={classes['hardened']['recovery_frequency'][0]:.3f}  "
            f"F(R) vulnerable={classes['vulnerable']['recovery_frequency'][0]:.3f}"
        )


def run_class_aware_replication() -> None:
    """Class-aware system level on a mixed fleet: choose *which* class to add.

    Fits the class-indexed replication CMDP from per-class empirical f_S
    (the add action of each container class weights the Eq. 8 shift by the
    class's empirical survival), solves the class-aware Algorithm 2, gives
    each class its own Algorithm-1-optimal recovery deadline, and compares
    a class-blind strategy against its class-aware counterpart with the
    same add pressure in the closed loop.
    """
    import math

    from repro.control import (
        TwoLevelController,
        apply_class_deltas,
        fit_class_aware_system_model,
        optimize_class_deltas,
    )
    from repro.core import (
        BetaBinomialObservationModel,
        ClassPreferenceReplicationStrategy,
        ReplicationThresholdStrategy,
    )
    from repro.envs import FleetVectorEnv, StrategyPolicy, rollout
    from repro.sim import FleetScenario, NodeClass
    from repro.solvers import solve_class_aware_replication_lp

    print("\n--- class-aware replication: per-class add actions + deadlines ---")
    model = BetaBinomialObservationModel()
    scenario = FleetScenario.mixed(
        [
            NodeClass(
                "vulnerable",
                NodeParameters(p_a=0.25, p_c1=0.04, p_c2=0.15, eta=3.0, delta_r=10),
                model,
                count=4,
            ),
            NodeClass(
                "hardened",
                NodeParameters(p_a=0.05, p_c1=0.02, p_c2=0.06, eta=1.5, delta_r=25),
                model,
                count=4,
            ),
        ],
        horizon=150,
        f=1,
    )

    # Per-class Delta_R: Algorithm 1 on each class's own node POMDP.
    deltas = optimize_class_deltas(
        scenario.node_classes(),
        delta_grid=(5, 15, math.inf),
        horizon=100,
        episodes_per_evaluation=5,
        seed=0,
    )
    for name, result in deltas.items():
        print(f"  {name}: Delta_R* = {result.delta_r:g}  (J_i = {result.estimated_cost:.3f})")
    scenario = apply_class_deltas(scenario, deltas)

    # Class-indexed Algorithm 2 on the fitted kernel stack.
    env = FleetVectorEnv(scenario, 100)
    rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    cmdp = fit_class_aware_system_model(env, epsilon_a=0.6)
    lp = solve_class_aware_replication_lp(cmdp)
    mass = lp.occupancy[:, 1:].sum(axis=0)
    print(
        f"  class-aware LP: J={lp.expected_cost:.2f}  T(A)={lp.availability:.2f}  "
        f"add mass vulnerable={mass[0]:.4f} / hardened={mass[1]:.4f}"
    )

    # Same add pressure, with and without the class choice.
    blind = ReplicationThresholdStrategy(beta=3)
    aware = ClassPreferenceReplicationStrategy(
        blind, "hardened", ("vulnerable", "hardened")
    )
    for label, strategy in (("class-blind", blind), ("class-aware", aware)):
        controller = TwoLevelController(
            scenario,
            num_envs=100,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=strategy,
            initial_nodes=4,
        )
        result = controller.run(seed=0)
        print(
            f"  {label}: cost={result.average_cost.mean():.3f}  "
            f"T(A)={result.availability.mean():.2f}  "
            f"J={result.average_nodes.mean():.2f}"
        )


def main() -> None:
    run_once(tolerance_policy(alpha=0.75), "TOLERANCE")
    run_once(no_recovery_policy(), "NO-RECOVERY")
    print(
        "\nTOLERANCE keeps the service available by recovering compromised replicas "
        "promptly, while NO-RECOVERY accumulates compromised replicas until the "
        "tolerance threshold f is exceeded."
    )
    run_batched_control_plane()
    run_mixed_fleet()
    run_class_aware_replication()


if __name__ == "__main__":
    main()
