#!/usr/bin/env python3
"""The full two-level feedback loop: emulation + consensus + both controllers.

This example runs the integrated :class:`ToleranceArchitecture` (Fig. 2 of
the paper): emulated nodes with IDS alert streams and an active attacker,
node controllers performing belief-based recovery, a system controller
(backed by a Raft log) managing the replication factor, and a MinBFT replica
group serving a client workload whose safety and validity are audited at the
end of the run.

It then contrasts the TOLERANCE strategy with the NO-RECOVERY baseline on
the same workload, reproducing in miniature the comparison of Table 7.

Run with:  python examples/two_level_control_loop.py
"""

from __future__ import annotations

from repro.core import NodeParameters, ToleranceArchitecture
from repro.emulation import EmulationConfig, no_recovery_policy, tolerance_policy


def run_once(policy, label: str) -> None:
    print(f"\n--- running the integrated architecture with the {label} policy ---")
    architecture = ToleranceArchitecture(
        config=EmulationConfig(
            initial_nodes=4,
            horizon=25,
            node_params=NodeParameters(p_a=0.1),
        ),
        policy=policy,
        requests_per_step=2.0,
        seed=42,
    )
    report = architecture.run()

    print(f"  availability T(A)              = {report.metrics.availability:.2f}")
    print(f"  time-to-recovery T(R)          = {report.metrics.time_to_recovery:.1f} steps")
    print(f"  recovery frequency F(R)        = {report.metrics.recovery_frequency:.3f}")
    print(f"  client requests completed      = {report.requests_completed}/{report.requests_submitted}")
    print(f"  safety holds                   = {report.safety_holds}")
    print(f"  validity holds                 = {report.validity_holds}")
    print(f"  controller decisions in Raft   = {report.controller_log_entries}")
    violations = report.invariant_violations or {}
    print(f"  Proposition 1 violations       = {violations if violations else 'none'}")


def main() -> None:
    run_once(tolerance_policy(alpha=0.75), "TOLERANCE")
    run_once(no_recovery_policy(), "NO-RECOVERY")
    print(
        "\nTOLERANCE keeps the service available by recovering compromised replicas "
        "promptly, while NO-RECOVERY accumulates compromised replicas until the "
        "tolerance threshold f is exceeded."
    )


if __name__ == "__main__":
    main()
