#!/usr/bin/env python3
"""Generate an intrusion-trace dataset and fit detection/system models from it.

The paper publishes a dataset of 6 400 intrusion traces collected on its
testbed, which downstream work can use to train detection models or evaluate
controllers offline.  This example shows the equivalent workflow with the
emulation substrate:

1. generate a (small) trace dataset with the TOLERANCE policy;
2. persist and reload it as JSON lines;
3. fit the empirical observation model \\hat{Z} from the IDS alert samples of
   one container type (the Fig. 11 procedure);
4. fit the empirical system transition model f_S from the observed
   (s_t, a_t, s_{t+1}) triples and re-solve Problem 2 against it.

Run with:  python examples/intrusion_trace_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import EmpiricalSystemModel, NodeParameters, NodeState
from repro.emulation import (
    CONTAINER_CATALOG,
    EmulationConfig,
    EmulationEnvironment,
    collect_alert_dataset,
    fit_empirical_model,
    generate_traces,
    load_traces,
    save_traces,
    tolerance_policy,
)
from repro.solvers import solve_replication_lp


def main() -> None:
    # ------------------------------------------------------------------ traces
    print("Generating 6 intrusion traces (100 time-steps each) ...")
    config = EmulationConfig(initial_nodes=3, horizon=100, node_params=NodeParameters(p_a=0.1))
    traces = generate_traces(num_traces=6, config=config, horizon=100, base_seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "intrusion_traces.jsonl"
        save_traces(traces, path)
        reloaded = load_traces(path)
    print(f"  wrote and reloaded {len(reloaded)} traces")
    for trace in reloaded[:3]:
        print(
            f"  trace {trace.trace_id}: T(A)={trace.availability:.2f} "
            f"T(R)={trace.time_to_recovery:.1f} F(R)={trace.recovery_frequency:.3f}"
        )

    # ------------------------------------------------------------------ detection model
    container = CONTAINER_CATALOG[0]
    print(f"\nFitting the empirical detection model for {container.primary_vulnerability} ...")
    samples = collect_alert_dataset(container, num_samples=4000, seed=1)
    detection_model = fit_empirical_model(samples)
    healthy_mean = float(detection_model.observations @ detection_model.pmf(NodeState.HEALTHY))
    intrusion_mean = float(
        detection_model.observations @ detection_model.pmf(NodeState.COMPROMISED)
    )
    print(f"  E[O | no intrusion] = {healthy_mean:.1f} buckets")
    print(f"  E[O | intrusion]    = {intrusion_mean:.1f} buckets")
    print(f"  D_KL separation     = {detection_model.detection_divergence():.2f}")

    # ------------------------------------------------------------------ system model
    print("\nFitting f_S from observed system-state transitions and solving Problem 2 ...")
    environment = EmulationEnvironment(config, tolerance_policy(), seed=3)
    environment.run()
    system_model = EmpiricalSystemModel(
        environment.system_state_transitions(), smax=config.max_nodes, f=environment.f,
        epsilon_a=0.85,
    )
    solution = solve_replication_lp(system_model)
    print(f"  LP feasible: {solution.feasible}")
    print(f"  expected number of nodes: {solution.expected_cost:.2f}")
    print(f"  achieved availability:    {solution.availability:.3f}")
    print(
        "  add probabilities:",
        {s: round(solution.strategy.add_probability(s), 2) for s in range(0, 8)},
    )


if __name__ == "__main__":
    main()
