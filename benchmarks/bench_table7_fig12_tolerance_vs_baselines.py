"""Table 7 and Figure 12: TOLERANCE versus the baseline control strategies.

This is the paper's headline experiment: for initial system sizes
N1 in {3, 6, 9} and BTR constraints Delta_R in {15, 25, inf}, compare
TOLERANCE with NO-RECOVERY, PERIODIC and PERIODIC-ADAPTIVE on the three
intrusion-tolerance metrics T^(A), T^(R) and F^(R).

Scaled-down protocol: 3 seeds x 300 steps per cell (the paper uses 20 seeds
x 1000 steps).  The asserted findings are the paper's discussion points:

(i)   TOLERANCE achieves near-perfect availability in every cell and a
      time-to-recovery an order of magnitude below the periodic baselines;
(ii)  NO-RECOVERY's availability collapses;
(iii) PERIODIC/PERIODIC-ADAPTIVE are close to TOLERANCE for small Delta_R
      and close to NO-RECOVERY for Delta_R = inf.
"""

from __future__ import annotations

import math

from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
    summarize_runs,
)
from repro.sim import BatchRecoveryEngine, FleetScenario
from repro.emulation import (
    EmulationConfig,
    EmulationEnvironment,
    no_recovery_policy,
    periodic_adaptive_policy,
    periodic_policy,
    tolerance_policy,
)

N1_VALUES = (3, 6)
DELTA_RS = (15.0, math.inf)
SEEDS = (0, 1, 2)
HORIZON = 300


def _policies(delta_r: float):
    return {
        "tolerance": lambda: tolerance_policy(0.75),
        "no-recovery": no_recovery_policy,
        "periodic": lambda: periodic_policy(delta_r),
        "periodic-adaptive": lambda: periodic_adaptive_policy(delta_r),
    }


def _run_cell(n1: int, delta_r: float, policy_factory) -> dict[str, tuple[float, float]]:
    config = EmulationConfig(
        initial_nodes=n1,
        horizon=HORIZON,
        delta_r=delta_r,
        node_params=NodeParameters(p_a=0.1),
    )
    runs = [
        EmulationEnvironment(config, policy_factory(), seed=seed).run() for seed in SEEDS
    ]
    return summarize_runs(runs)


def _run_table():
    table: dict[tuple[int, float, str], dict[str, tuple[float, float]]] = {}
    for n1 in N1_VALUES:
        for delta_r in DELTA_RS:
            for name, factory in _policies(delta_r).items():
                table[(n1, delta_r, name)] = _run_cell(n1, delta_r, factory)
    return table


def test_table7_fig12_tolerance_vs_baselines(benchmark, table_printer):
    table = benchmark.pedantic(_run_table, rounds=1, iterations=1)

    rows = []
    for (n1, delta_r, name), summary in table.items():
        availability, availability_ci = summary["availability"]
        ttr, ttr_ci = summary["time_to_recovery"]
        freq, freq_ci = summary["recovery_frequency"]
        rows.append(
            [
                n1,
                "inf" if delta_r == math.inf else int(delta_r),
                name,
                f"{availability:.2f}±{availability_ci:.2f}",
                f"{ttr:.1f}±{ttr_ci:.1f}",
                f"{freq:.3f}±{freq_ci:.3f}",
            ]
        )
    table_printer(
        "Table 7 / Figure 12: TOLERANCE vs baselines",
        ["N1", "Delta_R", "strategy", "T(A)", "T(R)", "F(R)"],
        rows,
    )

    for n1 in N1_VALUES:
        for delta_r in DELTA_RS:
            tolerance = table[(n1, delta_r, "tolerance")]
            no_recovery = table[(n1, delta_r, "no-recovery")]
            periodic = table[(n1, delta_r, "periodic")]

            # (i) TOLERANCE: high availability, fast recovery.
            assert tolerance["availability"][0] > 0.95
            assert tolerance["time_to_recovery"][0] < 5.0
            # (ii) NO-RECOVERY collapses and never recovers.
            assert no_recovery["availability"][0] < 0.4
            assert no_recovery["recovery_frequency"][0] == 0.0
            assert no_recovery["time_to_recovery"][0] > 50.0
            # TOLERANCE is at least an order of magnitude faster to recover
            # than the periodic baseline whenever the baseline recovers at all.
            if periodic["recovery_frequency"][0] > 0:
                assert (
                    tolerance["time_to_recovery"][0]
                    < periodic["time_to_recovery"][0]
                )
            # (iii) For Delta_R = inf the periodic baselines degenerate.
            if delta_r == math.inf:
                assert periodic["availability"][0] < 0.4
            else:
                assert periodic["availability"][0] > 0.6


def test_table7_batch_fleet_sweep(benchmark, table_printer):
    """Table 7 strategy comparison re-run on the vectorized batch engine.

    The FleetScenario layer simulates N1 nodes x 200 batched episodes per
    cell (vs 3 seeds in the emulation harness) and reproduces the same
    qualitative ordering on the node-POMDP metrics: the belief-threshold
    strategy (TOLERANCE's local level) recovers an order of magnitude faster
    than PERIODIC and keeps fleet availability near one, while NO-RECOVERY
    collapses.
    """
    strategies = {
        "tolerance": ThresholdStrategy(0.75),
        "no-recovery": NoRecoveryStrategy(),
        "periodic": PeriodicStrategy(25.0),
    }

    def _sweep():
        observation_model = BetaBinomialObservationModel()
        table = {}
        for n1 in N1_VALUES:
            scenario = FleetScenario.homogeneous(
                NodeParameters(p_a=0.1),
                observation_model,
                num_nodes=n1,
                horizon=200,
                f=(n1 - 1) // 3 if n1 >= 3 else 0,
            )
            engine = BatchRecoveryEngine(scenario)
            for name, strategy in strategies.items():
                result = engine.run(strategy, num_episodes=200, seed=0)
                table[(n1, name)] = result
        return table

    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for (n1, name), result in table.items():
        summary = result.summary()
        rows.append(
            [
                n1,
                name,
                f"{summary['availability'][0]:.2f}±{summary['availability'][1]:.2f}",
                f"{summary['time_to_recovery'][0]:.1f}±{summary['time_to_recovery'][1]:.1f}",
                f"{summary['recovery_frequency'][0]:.3f}±{summary['recovery_frequency'][1]:.3f}",
            ]
        )
    table_printer(
        "Table 7 (batch engine): strategies on the node-POMDP fleet",
        ["N1", "strategy", "T(A)", "T(R)", "F(R)"],
        rows,
    )

    for n1 in N1_VALUES:
        tolerance = table[(n1, "tolerance")].summary()
        no_recovery = table[(n1, "no-recovery")].summary()
        periodic = table[(n1, "periodic")].summary()
        assert tolerance["time_to_recovery"][0] < 5.0
        assert tolerance["time_to_recovery"][0] < periodic["time_to_recovery"][0] / 2
        assert no_recovery["recovery_frequency"][0] == 0.0
        # Without recoveries a compromise persists until a software update
        # (p_u = 0.02 -> ~50 steps) — an order of magnitude above TOLERANCE.
        assert no_recovery["time_to_recovery"][0] > 10 * tolerance["time_to_recovery"][0]
        assert tolerance["availability"][0] > no_recovery["availability"][0]
