"""Table 7 and Figure 12: TOLERANCE versus the baseline control strategies.

This is the paper's headline experiment: for initial system sizes
N1 in {3, 6, 9} and BTR constraints Delta_R in {15, 25, inf}, compare
TOLERANCE with NO-RECOVERY, PERIODIC and PERIODIC-ADAPTIVE on the three
intrusion-tolerance metrics T^(A), T^(R) and F^(R).

Scaled-down protocol: 3 seeds x 300 steps per cell (the paper uses 20 seeds
x 1000 steps).  The asserted findings are the paper's discussion points:

(i)   TOLERANCE achieves near-perfect availability in every cell and a
      time-to-recovery an order of magnitude below the periodic baselines;
(ii)  NO-RECOVERY's availability collapses;
(iii) PERIODIC/PERIODIC-ADAPTIVE are close to TOLERANCE for small Delta_R
      and close to NO-RECOVERY for Delta_R = inf.

All three sweeps run on the consolidated control-plane API
(:mod:`repro.control.sweep`): the emulation testbed cells, the node-POMDP
batch-engine sweep, and — new — the fully closed-loop two-level sweep where
both feedback levels run batched (``test_table7_closed_loop_control_plane``),
including the learned PPO replication contender and the >= 5x control-plane
speedup assertion.
"""

from __future__ import annotations

import math
import time

from repro.control import (
    ClosedLoopCell,
    TwoLevelController,
    closed_loop_sweep,
    emulation_cell,
    engine_fleet_sweep,
    identify_replication_strategies,
    train_ppo_replication,
)
from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    NoRecoveryStrategy,
    PeriodicStrategy,
    ThresholdStrategy,
)
from repro.emulation import (
    no_recovery_policy,
    periodic_adaptive_policy,
    periodic_policy,
    tolerance_policy,
)
from repro.sim import FleetScenario

import numpy as np

N1_VALUES = (3, 6)
DELTA_RS = (15.0, math.inf)
SEEDS = (0, 1, 2)
HORIZON = 300


def _policies(delta_r: float):
    return {
        "tolerance": lambda: tolerance_policy(0.75),
        "no-recovery": no_recovery_policy,
        "periodic": lambda: periodic_policy(delta_r),
        "periodic-adaptive": lambda: periodic_adaptive_policy(delta_r),
    }


def _run_table():
    table: dict[tuple[int, float, str], dict[str, tuple[float, float]]] = {}
    for n1 in N1_VALUES:
        for delta_r in DELTA_RS:
            for name, factory in _policies(delta_r).items():
                table[(n1, delta_r, name)] = emulation_cell(
                    n1,
                    delta_r,
                    factory,
                    seeds=SEEDS,
                    horizon=HORIZON,
                    node_params=NodeParameters(p_a=0.1),
                )
    return table


def test_table7_fig12_tolerance_vs_baselines(benchmark, table_printer):
    table = benchmark.pedantic(_run_table, rounds=1, iterations=1)

    rows = []
    for (n1, delta_r, name), summary in table.items():
        availability, availability_ci = summary["availability"]
        ttr, ttr_ci = summary["time_to_recovery"]
        freq, freq_ci = summary["recovery_frequency"]
        rows.append(
            [
                n1,
                "inf" if delta_r == math.inf else int(delta_r),
                name,
                f"{availability:.2f}±{availability_ci:.2f}",
                f"{ttr:.1f}±{ttr_ci:.1f}",
                f"{freq:.3f}±{freq_ci:.3f}",
            ]
        )
    table_printer(
        "Table 7 / Figure 12: TOLERANCE vs baselines",
        ["N1", "Delta_R", "strategy", "T(A)", "T(R)", "F(R)"],
        rows,
    )

    for n1 in N1_VALUES:
        for delta_r in DELTA_RS:
            tolerance = table[(n1, delta_r, "tolerance")]
            no_recovery = table[(n1, delta_r, "no-recovery")]
            periodic = table[(n1, delta_r, "periodic")]

            # (i) TOLERANCE: high availability, fast recovery.
            assert tolerance["availability"][0] > 0.95
            assert tolerance["time_to_recovery"][0] < 5.0
            # (ii) NO-RECOVERY collapses and never recovers.
            assert no_recovery["availability"][0] < 0.4
            assert no_recovery["recovery_frequency"][0] == 0.0
            assert no_recovery["time_to_recovery"][0] > 50.0
            # TOLERANCE is at least an order of magnitude faster to recover
            # than the periodic baseline whenever the baseline recovers at all.
            if periodic["recovery_frequency"][0] > 0:
                assert (
                    tolerance["time_to_recovery"][0]
                    < periodic["time_to_recovery"][0]
                )
            # (iii) For Delta_R = inf the periodic baselines degenerate.
            if delta_r == math.inf:
                assert periodic["availability"][0] < 0.4
            else:
                assert periodic["availability"][0] > 0.6


def test_table7_batch_fleet_sweep(benchmark, table_printer):
    """Table 7 strategy comparison re-run on the vectorized batch engine.

    The FleetScenario layer simulates N1 nodes x 200 batched episodes per
    cell (vs 3 seeds in the emulation harness) and reproduces the same
    qualitative ordering on the node-POMDP metrics: the belief-threshold
    strategy (TOLERANCE's local level) recovers an order of magnitude faster
    than PERIODIC and keeps fleet availability near one, while NO-RECOVERY
    collapses.
    """
    strategies = {
        "tolerance": ThresholdStrategy(0.75),
        "no-recovery": NoRecoveryStrategy(),
        "periodic": PeriodicStrategy(25.0),
    }

    def _sweep():
        return engine_fleet_sweep(
            N1_VALUES,
            strategies,
            node_params=NodeParameters(p_a=0.1),
            observation_model=BetaBinomialObservationModel(),
            num_episodes=200,
            horizon=200,
            seed=0,
        )

    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for (n1, name), result in table.items():
        summary = result.summary()
        rows.append(
            [
                n1,
                name,
                f"{summary['availability'][0]:.2f}±{summary['availability'][1]:.2f}",
                f"{summary['time_to_recovery'][0]:.1f}±{summary['time_to_recovery'][1]:.1f}",
                f"{summary['recovery_frequency'][0]:.3f}±{summary['recovery_frequency'][1]:.3f}",
            ]
        )
    table_printer(
        "Table 7 (batch engine): strategies on the node-POMDP fleet",
        ["N1", "strategy", "T(A)", "T(R)", "F(R)"],
        rows,
    )

    for n1 in N1_VALUES:
        tolerance = table[(n1, "tolerance")].summary()
        no_recovery = table[(n1, "no-recovery")].summary()
        periodic = table[(n1, "periodic")].summary()
        assert tolerance["time_to_recovery"][0] < 5.0
        assert tolerance["time_to_recovery"][0] < periodic["time_to_recovery"][0] / 2
        assert no_recovery["recovery_frequency"][0] == 0.0
        # Without recoveries a compromise persists until a software update
        # (p_u = 0.02 -> ~50 steps) — an order of magnitude above TOLERANCE.
        assert no_recovery["time_to_recovery"][0] > 10 * tolerance["time_to_recovery"][0]
        assert tolerance["availability"][0] > no_recovery["availability"][0]


# ---------------------------------------------------------------------------
# Closed-loop two-level sweep on the batched control plane
# ---------------------------------------------------------------------------
CLOSED_LOOP_PARAMS = NodeParameters(
    p_a=0.1, p_c1=0.01, p_c2=0.05, delta_r=math.inf
)
CLOSED_LOOP_SMAX = 7
CLOSED_LOOP_HORIZON = 150
CLOSED_LOOP_EPISODES = 100
CLOSED_LOOP_N1 = (4, 6)


def _closed_loop_setup():
    """System identification + PPO training shared by the sweep cells."""
    observation_model = BetaBinomialObservationModel()
    scenario = FleetScenario.homogeneous(
        CLOSED_LOOP_PARAMS,
        observation_model,
        num_nodes=CLOSED_LOOP_SMAX,
        horizon=CLOSED_LOOP_HORIZON,
        f=1,
    )
    sysid = identify_replication_strategies(
        scenario,
        ThresholdStrategy(0.75),
        num_fit_episodes=100,
        num_eval_episodes=20,
        epsilon_a=0.5,
        seed=0,
        initial_nodes=4,
    )
    assert sysid.lp.feasible and sysid.lagrangian is not None, (
        "Algorithm 2 must be solvable on the fitted kernel for this sweep"
    )
    ppo = train_ppo_replication(
        scenario,
        ThresholdStrategy(0.75),
        seed=2,
        initial_nodes=4,
        evaluation_episodes=0,
    )
    return observation_model, scenario, sysid, ppo


def _closed_loop_table(observation_model, sysid, ppo):
    cells = [
        ClosedLoopCell(
            "tolerance", ThresholdStrategy(0.75), sysid.lagrangian.strategy
        ),
        ClosedLoopCell("tolerance-lp", ThresholdStrategy(0.75), sysid.lp.strategy),
        ClosedLoopCell("tolerance-ppo", ThresholdStrategy(0.75), ppo.strategy),
        ClosedLoopCell(
            "no-recovery",
            NoRecoveryStrategy(),
            None,
            enforce_invariant=False,
            respect_recovery_limit=False,
        ),
        ClosedLoopCell(
            "periodic",
            PeriodicStrategy(25.0),
            None,
            enforce_invariant=False,
            respect_recovery_limit=False,
        ),
    ]
    return closed_loop_sweep(
        CLOSED_LOOP_N1,
        cells,
        CLOSED_LOOP_PARAMS,
        observation_model,
        smax=CLOSED_LOOP_SMAX,
        num_envs=CLOSED_LOOP_EPISODES,
        horizon=CLOSED_LOOP_HORIZON,
        seed=0,
        tolerance_threshold=lambda n1: 1,
    )


def test_table7_closed_loop_control_plane(benchmark, table_printer):
    """Table 7 / Fig 12 with *both* feedback levels in the loop, batched.

    The tentpole workload of the ``repro.control`` refactor: every cell
    couples belief-threshold node recovery with a system-level replication
    strategy (Theorem 2 Lagrangian and Algorithm 2 LP on the *fitted*
    empirical kernel, plus the PPO policy trained directly on the fleet
    env) over 100 simultaneous fleet episodes with crash-prone nodes.

    Asserted: the batched control plane reproduces the scalar
    ``SystemController`` loop decision for decision (bit parity under a
    shared seed) at >= 5x the speed, the two-level TOLERANCE cells keep the
    quorum and dominate the baselines, and the learned PPO replication
    policy improves over training and enters the table as a viable
    contender.
    """
    observation_model, scenario, sysid, ppo = _closed_loop_setup()
    table = benchmark.pedantic(
        lambda: _closed_loop_table(observation_model, sysid, ppo),
        rounds=1,
        iterations=1,
    )

    rows = []
    for (n1, name), result in sorted(table.items()):
        summary = result.summary()
        rows.append(
            [
                n1,
                name,
                f"{summary['availability'][0]:.2f}±{summary['availability'][1]:.2f}",
                f"{summary['average_nodes'][0]:.2f}±{summary['average_nodes'][1]:.2f}",
                f"{summary['recovery_frequency'][0]:.3f}",
                f"{result.additions.mean():.1f}",
                f"{result.evictions.mean():.1f}",
            ]
        )
    table_printer(
        "Table 7 (closed loop): two-level control on the batched plane",
        ["N1", "strategy", "T(A)", "J (nodes)", "F(R)", "adds", "evicts"],
        rows,
    )

    # -- scalar-vs-vectorized controller parity under a shared seed ----------
    parity = TwoLevelController(
        scenario,
        num_envs=10,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=sysid.lagrangian.strategy,
        initial_nodes=4,
        record_decisions=True,
    )
    parity.run(seed=123)
    batched_trace = parity.last_decision_trace
    parity.run_scalar_reference(seed=123)
    scalar_trace = parity.last_decision_trace
    for t in range(scenario.horizon):
        assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
        assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
        assert np.array_equal(
            batched_trace.emergencies[t], scalar_trace.emergencies[t]
        )

    # -- >= 5x control-plane speedup over the scalar SystemController loop ---
    timing = TwoLevelController(
        scenario,
        num_envs=CLOSED_LOOP_EPISODES,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=sysid.lagrangian.strategy,
        initial_nodes=4,
    )
    start = time.perf_counter()
    timing.run(seed=7)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    timing.run_scalar_reference(seed=7)
    scalar_seconds = time.perf_counter() - start
    speedup = scalar_seconds / batched_seconds
    print(
        f"closed-loop control plane: batched {batched_seconds:.3f}s vs scalar "
        f"{scalar_seconds:.3f}s ({speedup:.1f}x, {CLOSED_LOOP_EPISODES} episodes)"
    )
    assert speedup >= 5.0

    # -- two-level feedback dominates the baselines --------------------------
    for n1 in CLOSED_LOOP_N1:
        tolerance = table[(n1, "tolerance")].summary()
        no_recovery = table[(n1, "no-recovery")].summary()
        periodic = table[(n1, "periodic")].summary()

        # Feedback replication keeps the 2f+1 quorum; the baselines lose
        # crashed nodes for good and their availability collapses.
        assert tolerance["availability"][0] > 0.55
        assert tolerance["availability"][0] > periodic["availability"][0] + 0.3
        assert no_recovery["availability"][0] < 0.2
        assert table[(n1, "no-recovery")].recovery_frequency.max() == 0.0
        assert tolerance["average_nodes"][0] > 3.5
        assert no_recovery["average_nodes"][0] < 2.5
        # Emergency adds only fire for the invariant-enforcing cells.
        assert table[(n1, "tolerance")].emergency_additions.sum() > 0
        assert table[(n1, "no-recovery")].additions.sum() == 0

    # -- Algorithm 2 on the fitted kernel is feasible ------------------------
    assert sysid.lp.feasible
    assert sysid.lagrangian is not None

    # -- the learned PPO replication policy is a viable contender ------------
    assert ppo.history[-1] < ppo.history[0] - 0.5  # J improved over training
    assert (
        ppo.availability_history[-1] > ppo.availability_history[0] + 0.05
    )
    for n1 in CLOSED_LOOP_N1:
        ppo_cell = table[(n1, "tolerance-ppo")].summary()
        periodic_cell = table[(n1, "periodic")].summary()
        assert ppo_cell["availability"][0] > periodic_cell["availability"][0] + 0.3
