"""Figure 10: throughput of the MinBFT implementation versus cluster size.

The paper measures the average request throughput of its MinBFT
implementation for N in {3..10} replicas with 1 and 20 concurrent clients.
This benchmark drives the simulated cluster with closed-loop client
workloads, prints the same two series, and checks the expected shape:
more clients give higher throughput, and throughput does not increase as
the replica group grows (coordination costs grow with N).
"""

from __future__ import annotations

from repro.consensus import ClientWorkload, MinBFTCluster

CLUSTER_SIZES = (3, 4, 6, 8, 10)
CLIENT_COUNTS = (1, 8)
TICKS = 200


def _measure():
    results: dict[tuple[int, int], float] = {}
    for num_replicas in CLUSTER_SIZES:
        for num_clients in CLIENT_COUNTS:
            cluster = MinBFTCluster(num_replicas=num_replicas, seed=0)
            workload = ClientWorkload(cluster, num_clients=num_clients)
            stats = workload.run(total_ticks=TICKS, tick_seconds=0.01)
            results[(num_replicas, num_clients)] = stats["throughput_rps"]
    return results


def test_fig10_minbft_throughput(benchmark, table_printer):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_printer(
        "Figure 10: MinBFT throughput (requests/s) vs number of replicas",
        ["N"] + [f"{c} client(s)" for c in CLIENT_COUNTS],
        [
            [n] + [f"{results[(n, c)]:.1f}" for c in CLIENT_COUNTS]
            for n in CLUSTER_SIZES
        ],
    )

    # Every configuration makes progress.
    assert all(value > 0 for value in results.values())
    # More concurrent clients yield higher aggregate throughput (the gap
    # between the two curves in Fig. 10).
    for n in CLUSTER_SIZES:
        assert results[(n, CLIENT_COUNTS[1])] >= results[(n, CLIENT_COUNTS[0])]
    # Throughput does not grow with the replica group size.
    assert results[(CLUSTER_SIZES[-1], 1)] <= results[(CLUSTER_SIZES[0], 1)] * 1.5
