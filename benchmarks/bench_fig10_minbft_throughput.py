"""Figure 10: MinBFT throughput — versus cluster size, and under churn.

The paper measures the average request throughput of its MinBFT
implementation for N in {3..10} replicas with 1 and 20 concurrent clients.
This benchmark drives the simulated cluster with closed-loop client
workloads, prints the same two series, and checks the expected shape:
more clients give higher throughput, and throughput does not increase as
the replica group grows (coordination costs grow with N).

The throughput-under-churn benchmark goes further and runs the *integrated*
loop (:class:`~repro.control.ConsensusBackedFleet`): the two-level
controller compromises, recovers, evicts and adds replicas of a live
cluster while a pipelined client population keeps 10^4+ requests flowing
(request batching in the simulated network makes that volume cheap — one
envelope per link per tick).  It reports **served availability** — the
fraction of client requests completing within a deadline — next to the
controller-side ``T^(A)``, audits the safety invariants after every
reconfiguration, and checks the expected shape: churn degrades served
availability relative to a churn-free cluster but never zeroes it.
"""

from __future__ import annotations

from repro.consensus import (
    ClientWorkload,
    MinBFTCluster,
    NetworkConfig,
    audit_safety,
)
from repro.control import ConsensusBackedFleet
from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
from repro.core.strategies import ReplicationThresholdStrategy
from repro.sim import FleetScenario

CLUSTER_SIZES = (3, 4, 6, 8, 10)
CLIENT_COUNTS = (1, 8)
TICKS = 200

# Throughput-under-churn configuration: 16 clients x 4 outstanding requests
# over a 35-step controller episode (20 protocol ticks per step).
CHURN_SEED = 0
CHURN_CLIENTS = 16
CHURN_PIPELINE = 4
CHURN_TICKS_PER_STEP = 20
CHURN_DEADLINE = 30
CHURN_HORIZON = 35
BASELINE_TICKS = 300


def _measure():
    results: dict[tuple[int, int], float] = {}
    for num_replicas in CLUSTER_SIZES:
        for num_clients in CLIENT_COUNTS:
            cluster = MinBFTCluster(num_replicas=num_replicas, seed=0)
            workload = ClientWorkload(cluster, num_clients=num_clients)
            stats = workload.run(total_ticks=TICKS, tick_seconds=0.01)
            results[(num_replicas, num_clients)] = stats["throughput_rps"]
    return results


def test_fig10_minbft_throughput(benchmark, table_printer):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_printer(
        "Figure 10: MinBFT throughput (requests/s) vs number of replicas",
        ["N"] + [f"{c} client(s)" for c in CLIENT_COUNTS],
        [
            [n] + [f"{results[(n, c)]:.1f}" for c in CLIENT_COUNTS]
            for n in CLUSTER_SIZES
        ],
    )

    # Every configuration makes progress.
    assert all(value > 0 for value in results.values())
    # More concurrent clients yield higher aggregate throughput (the gap
    # between the two curves in Fig. 10).
    for n in CLUSTER_SIZES:
        assert results[(n, CLIENT_COUNTS[1])] >= results[(n, CLIENT_COUNTS[0])]
    # Throughput does not grow with the replica group size.
    assert results[(CLUSTER_SIZES[-1], 1)] <= results[(CLUSTER_SIZES[0], 1)] * 1.5


def _measure_churn():
    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1),
        BetaBinomialObservationModel(),
        num_nodes=10,
        horizon=CHURN_HORIZON,
        f=1,
    )
    fleet = ConsensusBackedFleet(
        scenario,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=ReplicationThresholdStrategy(1),
        num_clients=CHURN_CLIENTS,
        pipeline=CHURN_PIPELINE,
        ticks_per_step=CHURN_TICKS_PER_STEP,
        deadline_ticks=CHURN_DEADLINE,
    )
    churn = fleet.run(seed=CHURN_SEED)

    # Churn-free reference: the same client population against a static
    # cluster of the initial size, same deadline and retry policy.
    cluster = MinBFTCluster(
        num_replicas=fleet.controller.initial_nodes,
        network_config=NetworkConfig(batch_messages=True),
        seed=CHURN_SEED,
    )
    baseline = ClientWorkload(
        cluster,
        num_clients=CHURN_CLIENTS,
        pipeline=CHURN_PIPELINE,
        deadline_ticks=CHURN_DEADLINE,
        retry_interval=10,
    )
    baseline.pump(BASELINE_TICKS)
    return {
        "churn": churn,
        "baseline_stats": baseline.stats(),
        "baseline_audit": audit_safety(cluster),
    }


def test_fig10_throughput_under_churn(benchmark, table_printer):
    results = benchmark.pedantic(_measure_churn, rounds=1, iterations=1)
    churn = results["churn"]
    baseline_stats = results["baseline_stats"]

    table_printer(
        "MinBFT throughput under controller-driven churn "
        "(served availability vs T(A))",
        ["run", "requests", "rps", "served avail.", "T(A)", "reconfigs", "safety"],
        [
            [
                "churn",
                f"{churn.workload['completed_requests']:.0f}",
                f"{churn.workload['throughput_rps']:.1f}",
                f"{churn.served_availability:.4f}",
                f"{churn.availability:.3f}",
                churn.recoveries + churn.evictions + churn.additions,
                "ok" if churn.safety_ok else "VIOLATED",
            ],
            [
                "no churn",
                f"{baseline_stats['completed_requests']:.0f}",
                f"{baseline_stats['throughput_rps']:.1f}",
                f"{baseline_stats['served_availability']:.4f}",
                "-",
                0,
                "ok" if results["baseline_audit"].ok else "VIOLATED",
            ],
        ],
    )

    # Volume: batching lets one benchmark run push >= 10^4 requests through
    # live protocol clusters.
    total = (
        churn.workload["completed_requests"]
        + baseline_stats["completed_requests"]
    )
    assert total >= 10_000

    # Safety: every post-reconfiguration audit passed, on both runs.
    assert churn.safety_ok
    assert len(churn.audits) > 0
    assert results["baseline_audit"].ok

    # Shape: churn degrades served availability but never zeroes it, and
    # the controller actually exercised the cluster.
    assert churn.recoveries + churn.evictions + churn.additions > 0
    assert 0.0 < churn.served_availability < baseline_stats["served_availability"]
    assert 0.0 <= churn.availability <= 1.0
