"""Sharded multi-process sweeps: bit-exact parity, speedup, cache hits.

The parallel execution layer (:mod:`repro.control.parallel`) shards the
closed-loop sweeps over episodes and promises the sharded table is
**bit-identical** to the single-process one under a fixed seed — the
common-random-number discipline every Table 7 / Figure 12 comparison
rests on must survive parallelization exactly, not approximately.

This module runs a mixed Table-6-style grid through
:func:`~repro.control.sweep.mixed_closed_loop_sweep` at ``n_jobs=1`` and
``n_jobs=4`` and asserts every per-episode metric array (including the
per-class dictionaries) is bit-exact between the two.  The wall-clock
speedup is measured and reported as sustained cells/second; the >= 2x
assertion at 4 workers only fires when the machine actually exposes 4
cores (CI runners do — a single-core box cannot speed anything up, but
its parity check is just as binding).

The policy-cache benchmark asserts the second
:func:`~repro.control.sysid.identify_replication_strategies` call on an
unchanged fit is served entirely from the
:class:`~repro.control.policy_cache.PolicySolveCache` — zero LP solver
invocations, observed by monkeypatching the solver the cache routes
through.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.control import (
    ClosedLoopCell,
    PolicySolveCache,
    identify_replication_strategies,
    mixed_closed_loop_sweep,
)
from repro.core import (
    BetaBinomialObservationModel,
    MixedReplicationStrategy,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.sim import FleetScenario, NodeClass

SEED = 7
NUM_ENVS = 192
HORIZON = 200
N_JOBS = 4

#: Table 6 flavor: a hardened and a vulnerable container class.
HARDENED = NodeParameters(p_a=0.04, p_c1=0.01, p_c2=0.03, eta=1.5, delta_r=20)
VULNERABLE = NodeParameters(p_a=0.3, p_c1=0.02, p_c2=0.08, eta=3.0, delta_r=8)

TWO_LEVEL_FIELDS = (
    "availability",
    "average_nodes",
    "average_cost",
    "recovery_frequency",
    "additions",
    "emergency_additions",
    "evictions",
)


def _grid() -> dict[str, FleetScenario]:
    observation_model = BetaBinomialObservationModel()

    def mixed(hardened: int, vulnerable: int) -> FleetScenario:
        return FleetScenario.mixed(
            [
                NodeClass("hardened", HARDENED, observation_model, count=hardened),
                NodeClass("vulnerable", VULNERABLE, observation_model, count=vulnerable),
            ],
            horizon=HORIZON,
            f=1,
        )

    return {"balanced-6": mixed(3, 3), "exposed-8": mixed(2, 6)}


def _cells() -> list[ClosedLoopCell]:
    stochastic = MixedReplicationStrategy(
        ReplicationThresholdStrategy(4), ReplicationThresholdStrategy(5), kappa=0.5
    )
    # Eight (scenario, cell) pairs: two full rounds on four workers.
    return [
        ClosedLoopCell("tolerance", ThresholdStrategy(0.75)),
        ClosedLoopCell(
            "det-add-4", ThresholdStrategy(0.75), ReplicationThresholdStrategy(4)
        ),
        ClosedLoopCell(
            "det-add-5", ThresholdStrategy(0.75), ReplicationThresholdStrategy(5)
        ),
        ClosedLoopCell("stoch-add", ThresholdStrategy(0.75), stochastic),
    ]



def _run(n_jobs: int) -> tuple[dict, float]:
    start = time.perf_counter()
    table = mixed_closed_loop_sweep(
        _grid(), _cells(), num_envs=NUM_ENVS, seed=SEED, initial_nodes=4, n_jobs=n_jobs
    )
    return table, time.perf_counter() - start


def _assert_bit_exact(reference: dict, table: dict) -> None:
    assert set(reference) == set(table)
    for key in reference:
        a, b = reference[key], table[key]
        assert a.steps == b.steps
        for field in TWO_LEVEL_FIELDS:
            x, y = getattr(a, field), getattr(b, field)
            assert x.dtype == y.dtype, (key, field)
            np.testing.assert_array_equal(x, y, err_msg=f"{key}/{field}")
        assert list(a.class_average_cost) == list(b.class_average_cost)
        for label in a.class_average_cost:
            np.testing.assert_array_equal(
                a.class_average_cost[label], b.class_average_cost[label]
            )
            np.testing.assert_array_equal(
                a.class_recovery_frequency[label], b.class_recovery_frequency[label]
            )


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_sweep_parity_and_speedup(table_printer):
    serial_table, serial_seconds = _run(1)
    parallel_table, parallel_seconds = _run(N_JOBS)

    # The contract: sharding must not change a single bit of the table.
    _assert_bit_exact(serial_table, parallel_table)

    cells = len(serial_table)
    speedup = serial_seconds / parallel_seconds
    cores = _available_cores()
    table_printer(
        f"Sharded mixed sweep ({cells} cells x {NUM_ENVS} episodes x {HORIZON} steps)",
        ["path", "time (s)", "cells/s", "speedup"],
        [
            ["serial (n_jobs=1)", f"{serial_seconds:.2f}", f"{cells / serial_seconds:.2f}", "1.00x"],
            [
                f"sharded (n_jobs={N_JOBS})",
                f"{parallel_seconds:.2f}",
                f"{cells / parallel_seconds:.2f}",
                f"{speedup:.2f}x",
            ],
        ],
    )

    if cores >= N_JOBS:
        assert speedup >= 2.0, (
            f"sharded sweep only {speedup:.2f}x over serial on {cores} cores"
        )
    else:
        print(
            f"speedup assertion skipped: only {cores} core(s) available "
            f"(measured {speedup:.2f}x); parity asserted above"
        )


def test_policy_cache_effectiveness(table_printer, monkeypatch):
    observation_model = BetaBinomialObservationModel()
    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1), observation_model, num_nodes=6, horizon=40, f=1
    )
    cache = PolicySolveCache()
    kwargs = dict(
        num_fit_episodes=20, num_eval_episodes=10, seed=SEED, policy_cache=cache
    )

    start = time.perf_counter()
    first = identify_replication_strategies(scenario, ThresholdStrategy(0.75), **kwargs)
    cold_seconds = time.perf_counter() - start
    assert cache.misses == 2 and cache.hits == 0

    # The refit reproduces the same kernel, so the cache must absorb every
    # solve: the spy on the routed-through solver must never fire.
    import repro.solvers.cmdp as cmdp

    def forbidden(model):  # pragma: no cover - firing is the failure
        raise AssertionError("solver invoked despite an unchanged fitted model")

    monkeypatch.setattr(cmdp, "solve_replication_lp", forbidden)
    monkeypatch.setattr(cmdp, "solve_replication_lagrangian", forbidden)
    start = time.perf_counter()
    second = identify_replication_strategies(scenario, ThresholdStrategy(0.75), **kwargs)
    warm_seconds = time.perf_counter() - start

    assert cache.hits == 2 and cache.misses == 2
    assert second.lp is first.lp
    np.testing.assert_array_equal(first.model.transition, second.model.transition)

    table_printer(
        "Policy-solve cache (identify_replication_strategies, unchanged fit)",
        ["pass", "time (s)", "hits", "misses"],
        [
            ["cold", f"{cold_seconds:.2f}", "0", "2"],
            ["warm", f"{warm_seconds:.2f}", "2", "2"],
        ],
    )
