"""PPO rollout vectorization: speedup and statistical-equivalence benchmark.

PR 1 vectorized whole-episode evaluation; this benchmark covers the last
solver-side scalar hot path: the PPO rollout loop.  ``_collect_rollouts``
now drives a :class:`~repro.envs.VectorRecoveryEnv` — one policy forward
pass per timestep over all episodes, batched dynamics, array-level GAE —
while ``_collect_rollouts_scalar`` keeps the pre-refactor per-(episode,
step) Python loop as the reference.

Two properties are asserted:

* collecting rollouts with the default :class:`~repro.solvers.PPOConfig`
  is at least **5x** faster on the vectorized path (measured as the best
  of several interleaved rounds, which is robust to background load);
* a policy trained end-to-end on the vectorized path evaluates to the same
  average cost as one trained on the scalar path, within statistical
  tolerance (the two consume different random streams, so exact weight
  equality is not expected).
"""

from __future__ import annotations

import timeit

import numpy as np

from repro.core import BetaBinomialObservationModel, NodeParameters
from repro.envs import VectorRecoveryEnv
from repro.sim import FleetScenario
from repro.solvers import PPOConfig, RecoverySimulator, train_ppo_recovery
from repro.solvers.ppo import PPOPolicy, _collect_rollouts, _collect_rollouts_scalar

PARAMS = NodeParameters(p_a=0.1)
SPEEDUP_FLOOR = 5.0


def _best_seconds(callable_, number: int = 3, repeat: int = 5) -> float:
    return min(timeit.repeat(callable_, number=number, repeat=repeat)) / number


def test_ppo_rollout_vectorized_speedup(benchmark, table_printer):
    """Default-config rollout collection: batched env >= 5x the scalar loop."""
    model = BetaBinomialObservationModel()
    config = PPOConfig()  # the Appendix E defaults
    policy = PPOPolicy(config, np.random.default_rng(0))
    simulator = RecoverySimulator(PARAMS, model, horizon=config.horizon)
    env = VectorRecoveryEnv(
        FleetScenario.single_node(PARAMS, model, horizon=config.horizon),
        num_envs=config.rollout_episodes,
        track_metrics=False,
        copy_observations=False,
    )

    def scalar_round():
        _collect_rollouts_scalar(policy, simulator, config, np.random.default_rng(2))

    def vectorized_round():
        _collect_rollouts(policy, env, config, np.random.default_rng(2))

    # Warm-up, then interleaved best-of rounds so a background-load spike
    # cannot bias one side.
    scalar_round()
    vectorized_round()
    scalar_best = float("inf")
    vectorized_best = float("inf")
    for _ in range(4):
        scalar_best = min(scalar_best, _best_seconds(scalar_round))
        vectorized_best = min(vectorized_best, _best_seconds(vectorized_round))
    speedup = scalar_best / vectorized_best

    benchmark.pedantic(vectorized_round, rounds=1, iterations=1)
    table_printer(
        "PPO rollout collection (default PPOConfig: 8 episodes x 100 steps)",
        ["path", "best ms/collection", "speedup"],
        [
            ["scalar loop", f"{scalar_best * 1e3:.2f}", "1.0x"],
            ["vectorized env", f"{vectorized_best * 1e3:.2f}", f"{speedup:.1f}x"],
        ],
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized rollout collection only {speedup:.2f}x faster "
        f"(required >= {SPEEDUP_FLOOR}x)"
    )


def test_ppo_quick_train_smoke_statistical_equivalence(benchmark, table_printer):
    """Quick-mode training: vectorized and scalar policies cost the same."""
    model = BetaBinomialObservationModel()
    config = PPOConfig()  # default training budget (30 updates)
    evaluator = RecoverySimulator(PARAMS, model, horizon=config.horizon)

    def train_both():
        vectorized = train_ppo_recovery(PARAMS, model, config, seed=0)
        scalar = train_ppo_recovery(PARAMS, model, config, seed=0, vectorized=False)
        return vectorized, scalar

    vectorized, scalar = benchmark.pedantic(train_both, rounds=1, iterations=1)
    vectorized_cost = evaluator.estimate_cost(
        vectorized.policy, num_episodes=200, seed=99, batch=True
    )
    scalar_cost = evaluator.estimate_cost(
        scalar.policy, num_episodes=200, seed=99, batch=True
    )
    table_printer(
        "PPO end-to-end training (default PPOConfig, common evaluation seed)",
        ["path", "train s", "evaluated J_i"],
        [
            ["scalar rollouts", f"{scalar.wall_clock_seconds:.2f}", f"{scalar_cost:.4f}"],
            [
                "vectorized rollouts",
                f"{vectorized.wall_clock_seconds:.2f}",
                f"{vectorized_cost:.4f}",
            ],
        ],
    )
    assert np.isfinite(vectorized_cost) and np.isfinite(scalar_cost)
    assert abs(vectorized_cost - scalar_cost) <= 0.15, (
        "vectorized-rollout PPO diverged from the scalar reference: "
        f"{vectorized_cost:.4f} vs {scalar_cost:.4f}"
    )
    # Training histories stay in the sane cost band (always-recover = 1).
    assert all(0.0 <= c <= 2.5 for c in vectorized.history)
