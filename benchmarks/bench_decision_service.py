"""Decision-service soak: sustained decisions/sec, p99 tick latency, parity.

The paper's TOLERANCE architecture is an *online* control plane: its
controllers continuously ingest alerts from a live fleet and emit
recovery/replication decisions (Fig. 2).  This module soaks the serving
mode (:mod:`repro.serve`) under that regime — many fleets connected at
once, every fleet ticking every step — and measures what the service
sustains end to end:

* **decisions/sec** — node-level decisions delivered per wall-clock
  second across all connected fleets (fleets x episodes x nodes x ticks);
* **p99 tick latency** — the 99th percentile of the wall-clock time to
  advance *every* connected fleet by one tick, the number an operator
  would put an SLO on;
* **batching speedup** — the cross-fleet fused dispatch
  (``DecisionService(coalesce=True)``: one engine call per tick for the
  whole cohort) against the per-fleet serial baseline
  (``coalesce=False``: one engine call per fleet per tick).  Fused must
  be **strictly faster** — that is the reason the cohort machinery
  exists, and this module asserts it;
* **bit-parity under load** — both dispatch modes must replay a direct
  ``TwoLevelController.run`` on the same seed tree field for field
  (spot-checked per fleet here; exhaustively pinned in
  ``tests/test_decision_service.py``).

The default configuration simulates 10^4 concurrent node streams and
finishes well inside the CI ``service-sanity`` 60 s budget; set
``REPRO_BENCH_SOAK=1`` to scale the same soak to 10^5 node streams.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.control import TwoLevelController
from repro.serve import DecisionService
from repro.sim import FleetScenario

SOAK = os.environ.get("REPRO_BENCH_SOAK") == "1"

#: Fleet geometry.  fleets x episodes x nodes node streams are simulated
#: concurrently: 40 x 25 x 10 = 10^4 by default, 100 x 50 x 20 = 10^5
#: under REPRO_BENCH_SOAK=1.
NUM_FLEETS = 100 if SOAK else 40
EPISODES_PER_FLEET = 50 if SOAK else 25
NODES_PER_FLEET = 20 if SOAK else 10
HORIZON = 60
#: Fleets whose results are additionally replayed against a direct
#: ``TwoLevelController.run`` (each replay costs one serial run).
PARITY_FLEETS = 3

PARAMS = NodeParameters(p_a=0.1, p_c1=1e-5, p_c2=1e-3, p_u=0.02, eta=2.0)

TWO_LEVEL_FIELDS = (
    "availability",
    "average_nodes",
    "average_cost",
    "recovery_frequency",
    "additions",
    "emergency_additions",
    "evictions",
)


def _scenario() -> FleetScenario:
    return FleetScenario.homogeneous(
        PARAMS,
        BetaBinomialObservationModel(),
        num_nodes=NODES_PER_FLEET,
        horizon=HORIZON,
        f=1,
    )


def _controller(scenario: FleetScenario) -> TwoLevelController:
    return TwoLevelController(
        scenario,
        num_envs=EPISODES_PER_FLEET,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=ReplicationThresholdStrategy(1),
    )


def _soak(scenario: FleetScenario, coalesce: bool):
    """Run every fleet to the horizon; return (results, tick_seconds, calls)."""
    service = DecisionService(coalesce=coalesce)
    sessions = [
        service.register_controller(_controller(scenario), seed=fleet)
        for fleet in range(NUM_FLEETS)
    ]
    tick_seconds = []
    for _ in range(HORIZON):
        start = time.perf_counter()
        for sid in sessions:
            service.tick(sid)
        tick_seconds.append(time.perf_counter() - start)
    results = {sid: service.result(sid) for sid in sessions}
    return results, np.asarray(tick_seconds), service.engine_calls


def _assert_bit_exact(ours, theirs, context: str) -> None:
    for field in TWO_LEVEL_FIELDS:
        assert np.array_equal(getattr(ours, field), getattr(theirs, field)), (
            f"{context}: {field} diverged"
        )


def test_decision_service_soak(table_printer):
    scenario = _scenario()
    node_streams = NUM_FLEETS * EPISODES_PER_FLEET * NODES_PER_FLEET
    decisions = node_streams * HORIZON

    fused_results, fused_ticks, fused_calls = _soak(scenario, coalesce=True)
    serial_results, serial_ticks, serial_calls = _soak(scenario, coalesce=False)

    # Dispatch accounting: one fused engine call per tick for the whole
    # cohort vs one call per fleet per tick for the serial baseline.
    assert fused_calls == HORIZON
    assert serial_calls == NUM_FLEETS * HORIZON

    # Bit-parity between the two dispatch modes, every fleet.
    for (sid_f, ours), (sid_s, theirs) in zip(
        fused_results.items(), serial_results.items()
    ):
        _assert_bit_exact(ours, theirs, f"fused {sid_f} vs serial {sid_s}")

    # Bit-parity against direct TwoLevelController.run on the seed tree.
    for fleet, result in list(enumerate(fused_results.values()))[:PARITY_FLEETS]:
        direct = _controller(scenario).run(seed=fleet)
        _assert_bit_exact(result, direct, f"fleet {fleet} vs direct run")

    fused_total = float(fused_ticks.sum())
    serial_total = float(serial_ticks.sum())
    rows = []
    for mode, ticks, total in (
        ("fused", fused_ticks, fused_total),
        ("serial", serial_ticks, serial_total),
    ):
        rows.append(
            [
                mode,
                f"{NUM_FLEETS}x{EPISODES_PER_FLEET}x{NODES_PER_FLEET}",
                node_streams,
                f"{decisions / total:,.0f}",
                f"{1e3 * float(np.percentile(ticks, 99)):.2f}",
                f"{1e3 * float(np.median(ticks)):.2f}",
                f"{total:.2f}",
            ]
        )
    rows.append(["speedup", "", "", f"{serial_total / fused_total:.2f}x", "", "", ""])
    table_printer(
        f"Decision-service soak ({'10^5' if SOAK else '10^4'} node streams, "
        f"horizon {HORIZON})",
        ["mode", "fleets", "streams", "decisions/s", "p99 tick ms", "p50 tick ms", "s"],
        rows,
    )

    # The point of cross-fleet batching: strictly faster than dispatching
    # each fleet's kernel call on its own.
    assert fused_total < serial_total, (
        f"fused dispatch ({fused_total:.2f}s) not faster than per-fleet "
        f"serial dispatch ({serial_total:.2f}s)"
    )
