"""Figure 11: empirical alert distributions \\hat{Z}_i per intrusion type.

The paper fits the observation model from 25 000 labelled Snort alert
samples per container and shows that the intrusion and no-intrusion
distributions are clearly separated for every intrusion type.  This
benchmark collects (scaled-down) labelled datasets from the synthetic IDS
for all ten containers of Table 4, fits \\hat{Z}_i, prints the per-container
means and KL divergences, and checks the separation and the TP-2-relevant
mean ordering.
"""

from __future__ import annotations

import numpy as np

from repro.core import NodeState
from repro.emulation import CONTAINER_CATALOG, collect_alert_dataset, fit_empirical_model

SAMPLES_PER_CONTAINER = 1500


def _fit_all():
    models = {}
    for container in CONTAINER_CATALOG:
        samples = collect_alert_dataset(
            container, num_samples=SAMPLES_PER_CONTAINER, seed=container.replica_id
        )
        models[container] = fit_empirical_model(samples)
    return models


def test_fig11_alert_distributions(benchmark, table_printer):
    models = benchmark.pedantic(_fit_all, rounds=1, iterations=1)

    rows = []
    for container, model in models.items():
        healthy_mean = float(model.observations @ model.pmf(NodeState.HEALTHY))
        intrusion_mean = float(model.observations @ model.pmf(NodeState.COMPROMISED))
        divergence = model.detection_divergence()
        rows.append(
            [
                container.primary_vulnerability,
                f"{healthy_mean:.1f}",
                f"{intrusion_mean:.1f}",
                f"{divergence:.2f}",
            ]
        )
    table_printer(
        "Figure 11: fitted \\hat{Z}_i per intrusion type (bucketed alert counts)",
        ["intrusion", "E[O | no intrusion]", "E[O | intrusion]", "D_KL(H || C)"],
        rows,
    )

    for container, model in models.items():
        healthy_mean = float(model.observations @ model.pmf(NodeState.HEALTHY))
        intrusion_mean = float(model.observations @ model.pmf(NodeState.COMPROMISED))
        assert intrusion_mean > healthy_mean, container.name
        assert model.detection_divergence() > 0.2, container.name
        assert model.satisfies_assumption_d(), container.name
    # Brute-force intrusions (containers 1-3) are noisier than single CVE
    # exploits (containers 5, 7, 8), mirroring the spread visible in Fig. 11.
    noisy = np.mean([models[CONTAINER_CATALOG[i]].detection_divergence() for i in range(3)])
    quiet = np.mean([models[CONTAINER_CATALOG[i]].detection_divergence() for i in (4, 6, 7)])
    assert noisy > quiet * 0.8
