"""Attacker-intensity sweep on the heterogeneous closed-loop control plane.

The paper's testbed (Table 6) is a *mixed* fleet — replicas run different
container images with different vulnerabilities ``p_A``, crash rates and
recovery deadlines ``Delta_R``.  This benchmark sweeps the attacker's
intensity (a fleet-wide scale on the per-class compromise probabilities,
``p_A <- min(1, x * p_A)``) over such a mixed fleet with both feedback
levels in the loop, and prints the Table 7-style metrics per intensity —
including the per-class breakdown that only exists on the heterogeneous
path.

Asserted:

(i)   the batched heterogeneous closed loop reproduces the scalar
      per-node reference loop **bit for bit** under a shared SeedSequence
      tree (decision trace, integer metrics, per-class metrics);
(ii)  the batched sweep cell is >= 5x faster than the scalar reference on
      the same workload;
(iii) a faster attacker forces monotonically more recovery work and never
      improves availability, and the vulnerable container class recovers
      more often than the hardened one at every intensity.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.control import (
    ClosedLoopCell,
    TwoLevelController,
    attacker_intensity_sweep,
)
from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.sim import FleetScenario, NodeClass

INTENSITIES = (0.5, 1.0, 2.0, 4.0)
NUM_ENVS = 100
HORIZON = 150
INITIAL_NODES = 4

#: Table 6 in miniature: a hardened and a vulnerable container image.
HARDENED = NodeParameters(p_a=0.05, p_c1=0.01, p_c2=0.04, eta=1.5, delta_r=25)
VULNERABLE = NodeParameters(p_a=0.2, p_c1=0.02, p_c2=0.08, eta=3.0, delta_r=10)


def _mixed_scenario() -> FleetScenario:
    model = BetaBinomialObservationModel()
    return FleetScenario.mixed(
        [
            NodeClass("hardened", HARDENED, model, count=3),
            NodeClass("vulnerable", VULNERABLE, model, count=3),
        ],
        horizon=HORIZON,
        f=1,
    )


def _run_sweep(scenario: FleetScenario):
    cells = [
        ClosedLoopCell(
            "tolerance",
            ThresholdStrategy(0.75),
            ReplicationThresholdStrategy(beta=4),
        ),
    ]
    return attacker_intensity_sweep(
        scenario,
        intensities=INTENSITIES,
        cells=cells,
        num_envs=NUM_ENVS,
        seed=0,
        initial_nodes=INITIAL_NODES,
    )


def test_attacker_intensity_sweep_mixed_fleet(benchmark, table_printer):
    scenario = _mixed_scenario()
    table = benchmark.pedantic(lambda: _run_sweep(scenario), rounds=1, iterations=1)

    rows = []
    for (intensity, name), result in sorted(table.items()):
        summary = result.summary()
        classes = result.class_summary()
        rows.append(
            [
                f"{intensity:g}x",
                name,
                f"{summary['availability'][0]:.2f}±{summary['availability'][1]:.2f}",
                f"{summary['average_nodes'][0]:.2f}",
                f"{summary['recovery_frequency'][0]:.3f}",
                f"{classes['hardened']['recovery_frequency'][0]:.3f}",
                f"{classes['vulnerable']['recovery_frequency'][0]:.3f}",
            ]
        )
    table_printer(
        "Attacker-intensity sweep (mixed fleet, closed loop)",
        ["intensity", "strategy", "T(A)", "J (nodes)", "F(R)", "F(R) hard", "F(R) vuln"],
        rows,
    )

    # -- (iii) monotone attacker pressure ------------------------------------
    frequency = [
        table[(x, "tolerance")].recovery_frequency.mean() for x in INTENSITIES
    ]
    assert all(a < b for a, b in zip(frequency, frequency[1:])), (
        f"recovery work must grow with attacker intensity, got {frequency}"
    )
    availability = [
        table[(x, "tolerance")].availability.mean() for x in INTENSITIES
    ]
    assert availability[0] >= availability[-1], (
        "a 8x faster attacker cannot improve availability"
    )
    for x in INTENSITIES:
        classes = table[(x, "tolerance")].class_summary()
        assert (
            classes["vulnerable"]["recovery_frequency"][0]
            > classes["hardened"]["recovery_frequency"][0]
        ), "the vulnerable image must recover more often at every intensity"

    # -- (i) bit-exact parity with the scalar per-node reference loop --------
    parity = TwoLevelController(
        scenario.scale_attack(2.0),
        num_envs=10,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=ReplicationThresholdStrategy(beta=4),
        initial_nodes=INITIAL_NODES,
        record_decisions=True,
    )
    batched = parity.run(seed=123)
    batched_trace = parity.last_decision_trace
    scalar = parity.run_scalar_reference(seed=123)
    scalar_trace = parity.last_decision_trace
    for t in range(scenario.horizon):
        assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
        assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
        assert np.array_equal(
            batched_trace.emergencies[t], scalar_trace.emergencies[t]
        )
        assert np.array_equal(batched_trace.evictions[t], scalar_trace.evictions[t])
    assert np.array_equal(batched.additions, scalar.additions)
    assert np.array_equal(batched.evictions, scalar.evictions)
    assert np.array_equal(batched.availability, scalar.availability)
    for label in ("hardened", "vulnerable"):
        assert np.allclose(
            batched.class_average_cost[label], scalar.class_average_cost[label]
        )
        assert np.allclose(
            batched.class_recovery_frequency[label],
            scalar.class_recovery_frequency[label],
        )

    # -- (ii) >= 5x over the scalar per-node reference loop ------------------
    timing = TwoLevelController(
        scenario,
        num_envs=NUM_ENVS,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=ReplicationThresholdStrategy(beta=4),
        initial_nodes=INITIAL_NODES,
    )
    start = time.perf_counter()
    timing.run(seed=7)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    timing.run_scalar_reference(seed=7)
    scalar_seconds = time.perf_counter() - start
    speedup = scalar_seconds / batched_seconds
    print(
        f"mixed-fleet closed loop: batched {batched_seconds:.3f}s vs scalar "
        f"{scalar_seconds:.3f}s ({speedup:.1f}x, {NUM_ENVS} episodes)"
    )
    assert speedup >= 5.0, f"batched sweep only {speedup:.1f}x faster than scalar"


def test_scale_attack_saturates_and_preserves_classes():
    """Intensity scaling is a pure ``p_A`` transform: classes keep their
    identity and the scale clips at probability one (with a warning naming
    the clipped class)."""
    scenario = _mixed_scenario()
    with pytest.warns(RuntimeWarning, match="vulnerable"):
        scaled = scenario.scale_attack(10.0)
    assert scaled.node_labels == scenario.node_labels
    assert scaled.node_params[0].p_a == 0.5  # 10 * 0.05
    assert scaled.node_params[3].p_a == 1.0  # 10 * 0.2, clipped
    assert scaled.node_params[3].delta_r == VULNERABLE.delta_r
    assert (scenario.scale_attack(0.0).initial_beliefs() == 0.0).all()


def test_adversary_zoo_availability_curves_distinct():
    """The PR-9 zoo produces availability curves the static attacker cannot.

    Same fleet, same seed, same defender: each adversary's availability
    profile across the intensity axis must be distinguishable from the
    static baseline (the acceptance criterion of the adversary seam), and
    stealth must sit strictly below it at every intensity — hidden
    compromises defeat threshold recovery.
    """
    from repro.sim import BurstyAdversary, CorrelatedAdversary, StealthAdversary

    model = BetaBinomialObservationModel()
    zoo = {
        "static": None,
        "bursty": BurstyAdversary(),
        "correlated": CorrelatedAdversary(calm_scale=0.5),
        "stealth": StealthAdversary(suppression=0.8),
    }
    curves: dict[str, list[float]] = {}
    for name, adversary in zoo.items():
        curve = []
        for intensity in (0.5, 1.0, 2.0):
            scenario = FleetScenario.mixed(
                [
                    NodeClass("hardened", HARDENED, model, count=3),
                    NodeClass("vulnerable", VULNERABLE, model, count=3),
                ],
                horizon=HORIZON,
                f=1,
                adversary=adversary,
            ).scale_attack(intensity)
            controller = TwoLevelController(
                scenario,
                num_envs=50,
                recovery_policy=ThresholdStrategy(0.75),
                replication_strategy=ReplicationThresholdStrategy(beta=4),
                initial_nodes=INITIAL_NODES,
            )
            curve.append(float(controller.run(seed=17).availability.mean()))
        curves[name] = curve

    print("adversary availability curves (0.5x / 1x / 2x):")
    for name, curve in curves.items():
        print(f"  {name:>10}: " + " / ".join(f"{v:.3f}" for v in curve))

    static = np.asarray(curves["static"])
    for name in ("bursty", "correlated", "stealth"):
        distance = float(np.abs(np.asarray(curves[name]) - static).max())
        assert distance > 0.01, (
            f"{name} availability curve indistinguishable from static "
            f"baseline ({distance=:.4f})"
        )
    assert all(s < b for s, b in zip(curves["stealth"], static)), (
        "alert suppression must cost availability at every intensity"
    )
