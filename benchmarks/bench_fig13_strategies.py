"""Figure 13: the replication strategy pi(a=1|s) and the recovery threshold.

The paper illustrates (a) the system controller's strategy — the probability
of adding a node as a function of the expected number of healthy nodes — for
Delta_R = inf, N1 = 6, f = 1, and (b) the node controllers' recovery
strategy, a single belief threshold alpha* ~ 0.76.

The benchmark computes both: the replication strategy via Algorithm 2 and
the recovery threshold via belief-space value iteration, prints them, and
checks the structural properties (non-increasing add probability below a
threshold region; recovery threshold strictly inside (0, 1)).
"""

from __future__ import annotations


from repro.core import BetaBinomialObservationModel, BinomialSystemModel, NodeParameters
from repro.solvers import (
    RecoveryPOMDP,
    belief_value_iteration,
    solve_replication_lagrangian,
    solve_replication_lp,
)

SMAX = 13
F = 1


def _compute():
    model = BinomialSystemModel(
        smax=SMAX,
        f=F,
        per_node_failure_probability=0.3,
        regeneration_probability=0.01,
        epsilon_a=0.92,
    )
    lp = solve_replication_lp(model)
    lagrangian = solve_replication_lagrangian(model)
    pomdp = RecoveryPOMDP(
        NodeParameters(p_a=0.1, p_u=0.02), BetaBinomialObservationModel(), discount=0.95
    )
    recovery = belief_value_iteration(pomdp, grid_size=101, max_iterations=500)
    return model, lp, lagrangian, recovery


def test_fig13_strategies(benchmark, table_printer):
    model, lp, lagrangian, recovery = benchmark.pedantic(_compute, rounds=1, iterations=1)

    mixture_probs = [lagrangian.strategy.add_probability(s) for s in range(model.num_states)]
    table_printer(
        "Figure 13a: replication strategy pi(add | s) (Theorem 2 mixture)",
        ["s (healthy nodes)", "pi(add | s)"],
        [[s, f"{p:.2f}"] for s, p in enumerate(mixture_probs)],
    )
    print(f"LP availability: {lp.availability:.3f}, LP expected nodes: {lp.expected_cost:.2f}")
    print(f"Figure 13b: recovery threshold alpha* = {recovery.threshold():.2f}")

    # 13a: the mixture is non-increasing in s and adds for small s.
    assert all(a >= b - 1e-9 for a, b in zip(mixture_probs, mixture_probs[1:]))
    assert mixture_probs[0] == 1.0
    assert mixture_probs[-1] == 0.0
    # 13b: the recovery strategy has an interior threshold (the paper finds 0.76).
    threshold = recovery.threshold()
    assert 0.05 < threshold < 0.95
