"""Figure 13: the replication strategy pi(a=1|s) and the recovery threshold.

The paper illustrates (a) the system controller's strategy — the probability
of adding a node as a function of the expected number of healthy nodes — for
Delta_R = inf, N1 = 6, f = 1, and (b) the node controllers' recovery
strategy, a single belief threshold alpha* ~ 0.76.

The benchmark computes both — the replication strategy via Algorithm 2 and
the recovery threshold via belief-space value iteration — prints them, and
checks the structural properties (non-increasing add probability below a
threshold region; recovery threshold strictly inside (0, 1)).

The strategy curves are additionally routed through the batched control
plane (``repro.control``): the Algorithm 2 LP strategy and the Theorem 2
mixture drive the system level of 100 simultaneous closed-loop fleet
episodes (crash-prone nodes, N1 = 6, smax = 13) with common random numbers,
verifying that the curves *realized in closed loop* behave as the
stationary analysis predicts — replication spends nodes to keep the quorum
and lifts availability over the never-add baseline.
"""

from __future__ import annotations

import math

from repro.control import evaluate_replication_closed_loop
from repro.core import (
    BetaBinomialObservationModel,
    BinomialSystemModel,
    NodeParameters,
    ThresholdStrategy,
)
from repro.sim import BatchRecoveryEngine, FleetScenario
from repro.solvers import (
    RecoveryPOMDP,
    belief_value_iteration,
    solve_replication_lagrangian,
    solve_replication_lp,
)

SMAX = 13
F = 1
CLOSED_LOOP_EPISODES = 100
CLOSED_LOOP_HORIZON = 150


def _compute():
    model = BinomialSystemModel(
        smax=SMAX,
        f=F,
        per_node_failure_probability=0.3,
        regeneration_probability=0.01,
        epsilon_a=0.92,
    )
    lp = solve_replication_lp(model)
    lagrangian = solve_replication_lagrangian(model)
    pomdp = RecoveryPOMDP(
        NodeParameters(p_a=0.1, p_u=0.02), BetaBinomialObservationModel(), discount=0.95
    )
    recovery = belief_value_iteration(pomdp, grid_size=101, max_iterations=500)

    # Closed-loop realization of the strategy curves on the batched control
    # plane: same engine and seed for every strategy (common random numbers).
    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1, p_c1=0.01, p_c2=0.05, delta_r=math.inf),
        BetaBinomialObservationModel(),
        num_nodes=SMAX,
        horizon=CLOSED_LOOP_HORIZON,
        f=F,
    )
    engine = BatchRecoveryEngine(scenario)
    closed_loop = {
        name: evaluate_replication_closed_loop(
            scenario,
            CLOSED_LOOP_EPISODES,
            ThresholdStrategy(0.75),
            strategy,
            seed=0,
            initial_nodes=6,
            enforce_invariant=False,
            engine=engine,
        )
        for name, strategy in (
            ("never-add", None),
            ("lp", lp.strategy),
            ("lagrangian", lagrangian.strategy),
        )
    }
    return model, lp, lagrangian, recovery, closed_loop


def test_fig13_strategies(benchmark, table_printer):
    model, lp, lagrangian, recovery, closed_loop = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )

    mixture_probs = [lagrangian.strategy.add_probability(s) for s in range(model.num_states)]
    table_printer(
        "Figure 13a: replication strategy pi(add | s) (Theorem 2 mixture)",
        ["s (healthy nodes)", "pi(add | s)"],
        [[s, f"{p:.2f}"] for s, p in enumerate(mixture_probs)],
    )
    print(f"LP availability: {lp.availability:.3f}, LP expected nodes: {lp.expected_cost:.2f}")
    print(f"Figure 13b: recovery threshold alpha* = {recovery.threshold():.2f}")
    table_printer(
        "Figure 13a (closed loop): strategies on the batched control plane",
        ["strategy", "T(A)", "J (nodes)", "adds/episode"],
        [
            [
                name,
                f"{result.availability.mean():.2f}",
                f"{result.average_nodes.mean():.2f}",
                f"{result.additions.mean():.1f}",
            ]
            for name, result in closed_loop.items()
        ],
    )

    # 13a: the mixture is non-increasing in s and adds for small s.
    assert all(a >= b - 1e-9 for a, b in zip(mixture_probs, mixture_probs[1:]))
    assert mixture_probs[0] == 1.0
    assert mixture_probs[-1] == 0.0
    # 13b: the recovery strategy has an interior threshold (the paper finds 0.76).
    threshold = recovery.threshold()
    assert 0.05 < threshold < 0.95

    # Closed loop: both Algorithm 2 strategies actively add nodes, pay for
    # them in the objective J, and more than double the availability of the
    # never-add baseline (which loses the 2f+1 quorum to crashes).
    never = closed_loop["never-add"]
    assert never.additions.sum() == 0
    for name in ("lp", "lagrangian"):
        result = closed_loop[name]
        assert result.additions.mean() > 1.0
        assert result.average_nodes.mean() > never.average_nodes.mean() + 1.0
        assert result.availability.mean() > never.availability.mean() + 0.15
