"""Ablation benches for the TOLERANCE design choices (DESIGN.md §5).

Three ablations of the architecture, each run in the emulation environment:

1. **BTR constraint on/off** — the bounded-time-to-recovery constraint
   (Eq. 6b) guarantees that TOLERANCE never recovers later than a periodic
   scheme; switching it off should not hurt availability when the detector
   is good, but a deliberately blinded detector shows why the constraint is
   a useful safety net.
2. **Recovery threshold sweep** — lower thresholds recover more aggressively
   (higher F^(R)), higher thresholds recover later (higher T^(R)); the
   availability stays high across a broad middle range, which is the
   robustness property that makes the threshold parameterization practical.
3. **Static vs feedback replication** — with frequent crashes, the adaptive
   (feedback) replication strategy keeps more nodes alive than the static
   strategy, the effect the paper highlights in discussion point (iii).
"""

from __future__ import annotations

import math

from repro.core import NodeParameters
from repro.emulation import (
    EmulationConfig,
    EmulationEnvironment,
    EvaluationPolicy,
    tolerance_policy,
)

HORIZON = 250
SEEDS = (0, 1)


def _mean(values):
    return sum(values) / len(values)


def _run(config: EmulationConfig, policy: EvaluationPolicy) -> dict[str, float]:
    metrics = [EmulationEnvironment(config, policy, seed=seed).run() for seed in SEEDS]
    return {
        "availability": _mean([m.availability for m in metrics]),
        "time_to_recovery": _mean([m.time_to_recovery for m in metrics]),
        "recovery_frequency": _mean([m.recovery_frequency for m in metrics]),
        "average_nodes": _mean([m.average_nodes for m in metrics]),
    }


def _ablation_btr():
    config = EmulationConfig(
        initial_nodes=3, horizon=HORIZON, delta_r=15, node_params=NodeParameters(p_a=0.1)
    )
    with_btr = tolerance_policy(0.75)
    without_btr = tolerance_policy(0.75)
    without_btr.enforce_btr = False
    # A blinded controller: absurdly high threshold, so only the BTR constraint recovers.
    blinded_with_btr = tolerance_policy(1.0)
    blinded_without_btr = tolerance_policy(1.0)
    blinded_without_btr.enforce_btr = False
    return {
        "tolerance + BTR": _run(config, with_btr),
        "tolerance, no BTR": _run(config, without_btr),
        "blinded detector + BTR": _run(config, blinded_with_btr),
        "blinded detector, no BTR": _run(config, blinded_without_btr),
    }


def _ablation_threshold_sweep():
    config = EmulationConfig(
        initial_nodes=3, horizon=HORIZON, delta_r=math.inf, node_params=NodeParameters(p_a=0.1)
    )
    return {
        f"alpha={alpha}": _run(config, tolerance_policy(alpha)) for alpha in (0.3, 0.6, 0.9)
    }


def _ablation_replication():
    crashy = NodeParameters(p_a=0.05, p_c1=0.01, p_c2=0.05)
    config = EmulationConfig(
        initial_nodes=5, horizon=HORIZON, delta_r=math.inf, node_params=crashy, f=1
    )
    adaptive = tolerance_policy(0.75)
    static = tolerance_policy(0.75)
    static.enforce_invariant = False
    static.replication_strategy = None
    return {
        "feedback replication": _run(config, adaptive),
        "static replication": _run(config, static),
    }


def test_ablation_design_choices(benchmark, table_printer):
    btr, sweep, replication = benchmark.pedantic(
        lambda: (_ablation_btr(), _ablation_threshold_sweep(), _ablation_replication()),
        rounds=1,
        iterations=1,
    )

    def rows(results):
        return [
            [
                name,
                f"{r['availability']:.2f}",
                f"{r['time_to_recovery']:.1f}",
                f"{r['recovery_frequency']:.3f}",
                f"{r['average_nodes']:.1f}",
            ]
            for name, r in results.items()
        ]

    headers = ["variant", "T(A)", "T(R)", "F(R)", "avg nodes"]
    table_printer("Ablation 1: BTR constraint (Eq. 6b)", headers, rows(btr))
    table_printer("Ablation 2: recovery threshold sweep", headers, rows(sweep))
    table_printer("Ablation 3: feedback vs static replication under crashes", headers, rows(replication))

    # 1. With a blinded detector the BTR constraint rescues availability.
    assert btr["blinded detector + BTR"]["availability"] > (
        btr["blinded detector, no BTR"]["availability"] + 0.2
    )
    # With a good detector, dropping the BTR constraint barely matters.
    assert abs(
        btr["tolerance + BTR"]["availability"] - btr["tolerance, no BTR"]["availability"]
    ) < 0.05
    # 2. Lower thresholds recover more often; availability is high across the sweep.
    assert (
        sweep["alpha=0.3"]["recovery_frequency"]
        >= sweep["alpha=0.9"]["recovery_frequency"] - 1e-9
    )
    assert all(r["availability"] > 0.9 for r in sweep.values())
    # 3. Feedback replication sustains a larger healthy system under crashes.
    assert (
        replication["feedback replication"]["average_nodes"]
        > replication["static replication"]["average_nodes"]
    )
    assert (
        replication["feedback replication"]["availability"]
        >= replication["static replication"]["availability"] - 0.02
    )
