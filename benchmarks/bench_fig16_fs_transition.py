"""Figure 16: example transition function f_S of the replication CMDP.

The paper plots f_S(s' | s, a=0) for s in {0, 10, 20} on a 20-node system.
This benchmark builds the same kernel (both the analytical binomial variant
and an empirical variant estimated from emulation traces), prints the three
rows, and checks the structural properties that Theorem 2's assumptions
need: row-stochasticity, positivity, and first-order stochastic dominance in
the current state (tail-sum monotonicity).
"""

from __future__ import annotations

import numpy as np

from repro.core import BinomialSystemModel, EmpiricalSystemModel, NodeParameters
from repro.emulation import EmulationConfig, EmulationEnvironment, tolerance_policy

SMAX = 20


def _compute():
    analytical = BinomialSystemModel(
        smax=SMAX,
        f=3,
        per_node_failure_probability=0.15,
        regeneration_probability=0.05,
        epsilon_a=0.9,
    )
    config = EmulationConfig(
        initial_nodes=6, horizon=150, node_params=NodeParameters(p_a=0.1), max_nodes=13
    )
    environment = EmulationEnvironment(config, tolerance_policy(), seed=0)
    environment.run()
    empirical = EmpiricalSystemModel(
        environment.system_state_transitions(), smax=13, f=2
    )
    return analytical, empirical


def test_fig16_fs_transition(benchmark, table_printer):
    analytical, empirical = benchmark.pedantic(_compute, rounds=1, iterations=1)

    sample_states = (0, 10, 20)
    rows = []
    for s in sample_states:
        pmf = analytical.transition[0, s]
        top = np.argsort(pmf)[::-1][:4]
        rows.append(
            [s] + [f"s'={s_next}: {pmf[s_next]:.3f}" for s_next in sorted(top)]
        )
    table_printer(
        "Figure 16: f_S(s' | s, a=0) — most likely successor states",
        ["s", "1", "2", "3", "4"],
        rows,
    )
    print(
        "empirical f_S fitted from",
        empirical.num_observed_transitions,
        "emulation transitions",
    )

    assert np.allclose(analytical.transition.sum(axis=2), 1.0)
    assert analytical.satisfies_assumption_b()
    assert analytical.satisfies_assumption_c()
    assert np.allclose(empirical.transition.sum(axis=2), 1.0)
    # Larger current state shifts the successor distribution upward (FOSD).
    mean_from_0 = float(analytical.transition[0, 0] @ analytical.states)
    mean_from_20 = float(analytical.transition[0, 20] @ analytical.states)
    assert mean_from_20 > mean_from_0
