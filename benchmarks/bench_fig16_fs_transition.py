"""Figure 16: example transition function f_S of the replication CMDP.

The paper plots f_S(s' | s, a=0) for s in {0, 10, 20} on a 20-node system.
This benchmark builds the same kernel three ways — the analytical binomial
variant, an empirical variant estimated from emulation traces, and (new) an
empirical variant fitted at scale from the batched fleet environment's
``system_state_transitions()`` (100 episodes x 100 steps x 13 nodes in one
vectorized rollout, the path that replaces the docker-emulation-only
estimation of Appendix E) — prints the rows, and checks the structural
properties Theorem 2's assumptions need: row-stochasticity, positivity, and
first-order stochastic dominance in the current state (tail-sum
monotonicity).  A structural-parity check compares the two empirical
variants on what each can estimate: both are row-stochastic and strictly
positive, both concentrate the successor mass of their best-observed state
within +-2 of it, and the sim-fitted kernel's well-observed rows satisfy
the FOSD mean shift and the Eq. 8 add-action shift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import fit_system_model_from_env
from repro.core import (
    BetaBinomialObservationModel,
    BinomialSystemModel,
    EmpiricalSystemModel,
    NodeParameters,
    ThresholdStrategy,
)
from repro.emulation import EmulationConfig, EmulationEnvironment, tolerance_policy
from repro.envs import FleetVectorEnv, StrategyPolicy, rollout
from repro.sim import FleetScenario

SMAX = 20
SIM_SMAX = 13
SIM_EPISODES = 100
SIM_HORIZON = 100


def _compute():
    analytical = BinomialSystemModel(
        smax=SMAX,
        f=3,
        per_node_failure_probability=0.15,
        regeneration_probability=0.05,
        epsilon_a=0.9,
    )
    config = EmulationConfig(
        initial_nodes=6, horizon=150, node_params=NodeParameters(p_a=0.1), max_nodes=13
    )
    environment = EmulationEnvironment(config, tolerance_policy(), seed=0)
    environment.run()
    emulation_transitions = environment.system_state_transitions()
    empirical = EmpiricalSystemModel(
        emulation_transitions, smax=13, f=2
    )

    # The batched variant: one vectorized rollout of the fleet environment
    # produces two orders of magnitude more transitions than the emulation
    # episode, at a fraction of its wall-clock cost.
    scenario = FleetScenario.homogeneous(
        NodeParameters(p_a=0.1),
        BetaBinomialObservationModel(),
        num_nodes=SIM_SMAX,
        horizon=SIM_HORIZON,
        f=2,
    )
    fleet_env = FleetVectorEnv(scenario, SIM_EPISODES)
    rollout(fleet_env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    simulated = fit_system_model_from_env(fleet_env, epsilon_a=0.9)
    simulated_pairs = fleet_env.system_state_transitions()
    return (
        analytical,
        empirical,
        emulation_transitions,
        simulated,
        simulated_pairs,
    )


def _top_visited_state(states: np.ndarray) -> int:
    values, counts = np.unique(states, return_counts=True)
    return int(values[np.argmax(counts)])


def test_fig16_fs_transition(benchmark, table_printer):
    analytical, empirical, emulation_transitions, simulated, simulated_pairs = (
        benchmark.pedantic(_compute, rounds=1, iterations=1)
    )

    sample_states = (0, 10, 20)
    rows = []
    for s in sample_states:
        pmf = analytical.transition[0, s]
        top = np.argsort(pmf)[::-1][:4]
        rows.append(
            [s] + [f"s'={s_next}: {pmf[s_next]:.3f}" for s_next in sorted(top)]
        )
    table_printer(
        "Figure 16: f_S(s' | s, a=0) — most likely successor states",
        ["s", "1", "2", "3", "4"],
        rows,
    )
    print(
        "empirical f_S fitted from",
        empirical.num_observed_transitions,
        "emulation transitions vs",
        simulated.num_observed_transitions,
        "batched-engine transitions",
    )

    assert np.allclose(analytical.transition.sum(axis=2), 1.0)
    assert analytical.satisfies_assumption_b()
    assert analytical.satisfies_assumption_c()
    assert np.allclose(empirical.transition.sum(axis=2), 1.0)
    # Larger current state shifts the successor distribution upward (FOSD).
    mean_from_0 = float(analytical.transition[0, 0] @ analytical.states)
    mean_from_20 = float(analytical.transition[0, 20] @ analytical.states)
    assert mean_from_20 > mean_from_0

    # -- structural parity between the two empirical variants ----------------
    # Scale: the vectorized fit sees every (s, s') pair of B x T steps.
    assert simulated.num_observed_transitions == 2 * SIM_EPISODES * SIM_HORIZON
    assert simulated.num_observed_transitions > 50 * empirical.num_observed_transitions

    # Row-stochasticity and positivity (Laplace smoothing) for both.
    for model in (empirical, simulated):
        assert np.allclose(model.transition.sum(axis=2), 1.0)
        assert np.all(model.transition > 0.0)

    # Both concentrate the successor mass of their best-observed state
    # within +-2 of it (the fleet state moves slowly between steps).
    emulation_top = _top_visited_state(
        np.array([s for s, _, _ in emulation_transitions])
    )
    simulated_top = _top_visited_state(simulated_pairs[:, 0])
    for model, top in ((empirical, emulation_top), (simulated, simulated_top)):
        window = model.transition[0, top, max(top - 2, 0) : top + 3]
        assert window.sum() > 0.6

    # The sim-fitted kernel has enough support for the Theorem 2 structure:
    # FOSD mean shift over well-observed states...
    values, counts = np.unique(simulated_pairs[:, 0], return_counts=True)
    well_observed = [int(s) for s, c in zip(values, counts) if c >= 200]
    assert len(well_observed) >= 3
    means = simulated.transition[0] @ simulated.states
    observed_means = [means[s] for s in well_observed]
    assert all(
        b >= a - 0.1 for a, b in zip(observed_means, observed_means[1:])
    )
    # ... and the Eq. 8 add-action shift f_S(s' | s, 1) = f_S(s' - 1 | s, 0).
    means_add = simulated.transition[1] @ simulated.states
    for s in well_observed:
        if s < simulated.smax - 1:
            assert means_add[s] == pytest.approx(means[s] + 1.0, abs=0.05)
