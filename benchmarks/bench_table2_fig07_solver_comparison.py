"""Table 2 and Figure 7: solver comparison for Problem 1 (optimal recovery).

The paper compares Algorithm 1 instantiated with CEM, DE, BO and SPSA against
the baselines Incremental Pruning (IP) and PPO, across BTR constraints
Delta_R in {5, 15, 25, inf}, reporting compute time and the achieved cost
J_i.  This benchmark runs a scaled-down version (fewer iterations and seeds),
prints the same rows, and checks the qualitative findings:

* the structure-exploiting optimizers (CEM/DE) reach near-optimal cost,
* they are never much worse than PPO, which ignores Theorem 1,
* all of them beat the never-recover and always-recover corner strategies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    NoRecoveryStrategy,
    ThresholdStrategy,
)
from repro.solvers import (
    CrossEntropyMethod,
    DifferentialEvolution,
    PPOConfig,
    RecoverySimulator,
    SPSA,
    BayesianOptimization,
    solve_recovery_problem,
    train_ppo_recovery,
)

DELTA_RS = (5.0, 15.0, math.inf)
HORIZON = 80
OBSERVATION_MODEL = BetaBinomialObservationModel()


def _optimizers():
    return {
        "cem": CrossEntropyMethod(population_size=20, iterations=6),
        "de": DifferentialEvolution(population_size=6, iterations=10),
        "bo": BayesianOptimization(iterations=10, initial_samples=5),
        "spsa": SPSA(iterations=20),
    }


def _run_comparison():
    rows = []
    results: dict[tuple[str, float], float] = {}
    for delta_r in DELTA_RS:
        params = NodeParameters(p_a=0.1, delta_r=delta_r)
        for name, optimizer in _optimizers().items():
            solution = solve_recovery_problem(
                params,
                OBSERVATION_MODEL,
                optimizer,
                horizon=HORIZON,
                episodes_per_evaluation=3,
                final_evaluation_episodes=10,
                seed=0,
            )
            results[(name, delta_r)] = solution.estimated_cost
            rows.append([name, delta_r, f"{solution.wall_clock_seconds:.2f}",
                         f"{solution.estimated_cost:.3f}"])
        # PPO baseline (structure-agnostic RL).
        ppo = train_ppo_recovery(
            params,
            OBSERVATION_MODEL,
            PPOConfig(updates=5, rollout_episodes=3, horizon=HORIZON, hidden_size=16),
            seed=0,
        )
        results[("ppo", delta_r)] = ppo.estimated_cost
        rows.append(["ppo", delta_r, f"{ppo.wall_clock_seconds:.2f}", f"{ppo.estimated_cost:.3f}"])
    return rows, results


def test_table2_fig07_solver_comparison(benchmark, table_printer):
    rows, results = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)

    table_printer(
        "Table 2: solving Problem 1 — compute time and cost J_i per Delta_R",
        ["method", "Delta_R", "time (s)", "J_i"],
        rows,
    )

    # Reference costs of the corner strategies.
    params = NodeParameters(p_a=0.1, delta_r=math.inf)
    simulator = RecoverySimulator(params, OBSERVATION_MODEL, horizon=HORIZON)
    never = simulator.estimate_cost(NoRecoveryStrategy(), num_episodes=10, seed=1)
    always = simulator.estimate_cost(ThresholdStrategy(0.0), num_episodes=10, seed=1)
    print(f"corner strategies: never-recover J={never:.3f}, always-recover J={always:.3f}")

    # Qualitative Table 2 findings.
    for delta_r in DELTA_RS:
        assert results[("cem", delta_r)] < never, "CEM must beat never-recover"
        assert results[("cem", delta_r)] < always + 0.05, "CEM must not lose to always-recover"
        assert results[("de", delta_r)] < never
    # The threshold parameterization (CEM) is competitive with PPO.
    assert results[("cem", math.inf)] <= results[("ppo", math.inf)] + 0.1
