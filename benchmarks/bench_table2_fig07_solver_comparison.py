"""Table 2 and Figure 7: solver comparison for Problem 1 (optimal recovery).

The paper compares Algorithm 1 instantiated with CEM, DE, BO and SPSA against
the baselines Incremental Pruning (IP) and PPO, across BTR constraints
Delta_R in {5, 15, 25, inf}, reporting compute time and the achieved cost
J_i.  This benchmark runs a scaled-down version (fewer iterations and seeds),
prints the same rows, and checks the qualitative findings:

* the structure-exploiting optimizers (CEM/DE) reach near-optimal cost,
* they are never much worse than PPO, which ignores Theorem 1,
* all of them beat the never-recover and always-recover corner strategies.
"""

from __future__ import annotations

import math


from repro.core import (
    BetaBinomialObservationModel,
    NodeParameters,
    NoRecoveryStrategy,
    ThresholdStrategy,
)
from repro.sim import BatchRecoveryEngine, FleetScenario
from repro.solvers import (
    CrossEntropyMethod,
    DifferentialEvolution,
    PPOConfig,
    RecoverySimulator,
    SPSA,
    BayesianOptimization,
    solve_recovery_problem,
    train_ppo_recovery,
)

DELTA_RS = (5.0, 15.0, math.inf)
HORIZON = 80
OBSERVATION_MODEL = BetaBinomialObservationModel()


def _optimizers():
    return {
        "cem": CrossEntropyMethod(population_size=20, iterations=6),
        "de": DifferentialEvolution(population_size=6, iterations=10),
        "bo": BayesianOptimization(iterations=10, initial_samples=5),
        "spsa": SPSA(iterations=20),
    }


def _run_comparison():
    rows = []
    results: dict[tuple[str, float], float] = {}
    for delta_r in DELTA_RS:
        params = NodeParameters(p_a=0.1, delta_r=delta_r)
        for name, optimizer in _optimizers().items():
            solution = solve_recovery_problem(
                params,
                OBSERVATION_MODEL,
                optimizer,
                horizon=HORIZON,
                episodes_per_evaluation=3,
                final_evaluation_episodes=10,
                seed=0,
            )
            results[(name, delta_r)] = solution.estimated_cost
            rows.append([name, delta_r, f"{solution.wall_clock_seconds:.2f}",
                         f"{solution.estimated_cost:.3f}"])
        # PPO baseline (structure-agnostic RL).
        ppo = train_ppo_recovery(
            params,
            OBSERVATION_MODEL,
            PPOConfig(updates=5, rollout_episodes=3, horizon=HORIZON, hidden_size=16),
            seed=0,
        )
        results[("ppo", delta_r)] = ppo.estimated_cost
        rows.append(["ppo", delta_r, f"{ppo.wall_clock_seconds:.2f}", f"{ppo.estimated_cost:.3f}"])
    return rows, results


def test_table2_fig07_solver_comparison(benchmark, table_printer):
    rows, results = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)

    table_printer(
        "Table 2: solving Problem 1 — compute time and cost J_i per Delta_R",
        ["method", "Delta_R", "time (s)", "J_i"],
        rows,
    )

    # Reference costs of the corner strategies.
    params = NodeParameters(p_a=0.1, delta_r=math.inf)
    simulator = RecoverySimulator(params, OBSERVATION_MODEL, horizon=HORIZON)
    never = simulator.estimate_cost(NoRecoveryStrategy(), num_episodes=10, seed=1)
    always = simulator.estimate_cost(ThresholdStrategy(0.0), num_episodes=10, seed=1)
    print(f"corner strategies: never-recover J={never:.3f}, always-recover J={always:.3f}")

    # Qualitative Table 2 findings.
    for delta_r in DELTA_RS:
        assert results[("cem", delta_r)] < never, "CEM must beat never-recover"
        assert results[("cem", delta_r)] < always + 0.05, "CEM must not lose to always-recover"
        assert results[("de", delta_r)] < never
    # The threshold parameterization (CEM) is competitive with PPO.
    assert results[("cem", math.inf)] <= results[("ppo", math.inf)] + 0.1


def test_table2_fleet_sweep_batch_engine(benchmark, table_printer):
    """Fleet sweep opened by the batch engine: per-node attack-rate scaling.

    Re-scores a fixed threshold strategy over a heterogeneous fleet
    (per-node p_A in {0.05, 0.1, 0.2}) with 500 batched episodes per cell —
    a workload that would take minutes in the scalar simulator — and checks
    the monotone trend: higher attack rates cost more and recover more.
    """

    def _sweep():
        p_as = (0.05, 0.1, 0.2)
        scenario = FleetScenario(
            tuple(NodeParameters(p_a=p_a, delta_r=15.0) for p_a in p_as),
            (OBSERVATION_MODEL,) * len(p_as),
            horizon=HORIZON,
            f=1,
        )
        engine = BatchRecoveryEngine(scenario)
        result = engine.run(ThresholdStrategy(0.6), num_episodes=500, seed=0)
        return p_as, result

    p_as, result = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    mean_costs = result.average_cost.mean(axis=0)
    mean_freq = result.recovery_frequency.mean(axis=0)
    table_printer(
        "Fleet sweep: per-node p_A vs cost/recovery (500 batched episodes)",
        ["p_A", "J_i", "F(R)"],
        [
            [p_a, f"{mean_costs[j]:.3f}", f"{mean_freq[j]:.3f}"]
            for j, p_a in enumerate(p_as)
        ],
    )

    # Monotone trend: a higher attack rate costs more and recovers more often.
    assert mean_costs[0] < mean_costs[1] < mean_costs[2]
    assert mean_freq[0] < mean_freq[1] < mean_freq[2]
    assert result.availability is not None and result.availability.mean() > 0.5
