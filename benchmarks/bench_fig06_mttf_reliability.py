"""Figure 6: mean time to failure and reliability curves (Appendix F).

(a) MTTF as a function of the initial number of nodes N1 for
    p_A in {0.1, 0.025, 0.01};
(b) reliability curves R(t) for N1 in {25, 50, 100, 200}.

Shape checks: MTTF increases with N1 and decreases with p_A; R(t) decreases
in t and increases with N1.
"""

from __future__ import annotations

import numpy as np

from repro.core import NodeParameters, ReliabilityAnalysis

N1_VALUES = (10, 20, 30, 40, 60, 80, 100)
P_A_VALUES = (0.1, 0.025, 0.01)
RELIABILITY_N1 = (25, 50, 100, 200)
HORIZON = 100


def _compute():
    mttf = {
        p_a: ReliabilityAnalysis(NodeParameters(p_a=p_a), f=3, k=1).mttf_curve(list(N1_VALUES))
        for p_a in P_A_VALUES
    }
    analysis = ReliabilityAnalysis(NodeParameters(p_a=0.05), f=3, k=1)
    reliability = {n1: analysis.reliability_curve(n1, HORIZON) for n1 in RELIABILITY_N1}
    return mttf, reliability


def test_fig06_mttf_and_reliability(benchmark, table_printer):
    mttf, reliability = benchmark(_compute)

    table_printer(
        "Figure 6a: mean time to failure E[T^(f)] vs N1",
        ["N1"] + [f"p_A={p}" for p in P_A_VALUES],
        [
            [n1] + [f"{mttf[p][i]:.1f}" for p in P_A_VALUES]
            for i, n1 in enumerate(N1_VALUES)
        ],
    )
    sample_t = (10, 30, 50, 70, 100)
    table_printer(
        "Figure 6b: reliability R(t) vs t",
        ["t"] + [f"N1={n}" for n in RELIABILITY_N1],
        [
            [t] + [f"{reliability[n][t - 1]:.3f}" for n in RELIABILITY_N1]
            for t in sample_t
        ],
    )

    for p_a in P_A_VALUES:
        assert np.all(np.diff(mttf[p_a]) > 0), "MTTF must grow with N1"
    assert np.all(mttf[0.01] >= mttf[0.1]), "lower attack rate gives larger MTTF"
    for n1 in RELIABILITY_N1:
        assert np.all(np.diff(reliability[n1]) <= 1e-12)
    assert np.all(reliability[200] >= reliability[25] - 1e-9)
