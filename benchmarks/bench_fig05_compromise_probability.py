"""Figure 5: probability that a node is compromised or crashed by time t.

The paper plots P[S_t = C or S_t = crash] under the all-WAIT policy for
p_A in {0.1, 0.05, 0.025, 0.01}.  The benchmark regenerates the four curves
and checks their ordering (larger p_A fails faster) and monotonicity.
"""

from __future__ import annotations

import numpy as np

from repro.core import NodeParameters, failure_probability_curve

P_A_VALUES = (0.1, 0.05, 0.025, 0.01)
HORIZON = 100


def _compute_curves():
    return {
        p_a: failure_probability_curve(
            NodeParameters(p_a=p_a, p_u=1e-9, p_c1=1e-5, p_c2=1e-3), HORIZON
        )
        for p_a in P_A_VALUES
    }


def test_fig05_compromise_probability(benchmark, table_printer):
    curves = benchmark(_compute_curves)

    sample_points = [10, 20, 40, 60, 80, 100]
    table_printer(
        "Figure 5: P[compromised or crashed by t] (no recoveries)",
        ["t"] + [f"p_A={p}" for p in P_A_VALUES],
        [
            [t] + [f"{curves[p][t - 1]:.3f}" for p in P_A_VALUES]
            for t in sample_points
        ],
    )

    for p_a in P_A_VALUES:
        curve = curves[p_a]
        assert np.all(np.diff(curve) >= -1e-12), "curves must be monotone"
        assert curve[-1] <= 1.0 + 1e-9
    # Ordering: higher attack probability fails faster at every time point.
    for faster, slower in zip(P_A_VALUES, P_A_VALUES[1:]):
        assert np.all(curves[faster] >= curves[slower] - 1e-12)
    # With p_A = 0.1 the node is almost surely failed within 60 steps (as in Fig. 5).
    assert curves[0.1][59] > 0.99
