"""Figure 18 / Appendix H: KL divergence of candidate detection metrics.

The paper collects hundreds of infrastructure metrics and ranks them by the
KL divergence between their distributions with and without intrusions,
finding that priority-weighted IDS alerts carry by far the most information.
This benchmark generates synthetic traces for the same six metrics shown in
Fig. 18 (alerts, failed logins, new processes, TCP connections, blocks
written, blocks read), computes the divergence report, and checks that the
alert metric ranks first.
"""

from __future__ import annotations

import numpy as np

from repro.core import metric_divergence_report
from repro.emulation import CONTAINER_CATALOG, SnortLikeIDS


def _generate_metric_samples(num_samples: int = 1500, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = SnortLikeIDS(CONTAINER_CATALOG[0])
    alerts_healthy = [ids.sample_alerts(False, rng) for _ in range(num_samples)]
    alerts_intrusion = [ids.sample_alerts(True, rng) for _ in range(num_samples)]
    return {
        "alerts_weighted_by_priority": (alerts_healthy, alerts_intrusion),
        "new_failed_login_attempts": (
            rng.poisson(1.0, num_samples),
            rng.poisson(3.0, num_samples),
        ),
        "new_processes": (
            rng.normal(50, 15, num_samples),
            rng.normal(55, 15, num_samples),
        ),
        "new_tcp_connections": (
            rng.normal(30, 10, num_samples),
            rng.normal(33, 10, num_samples),
        ),
        "blocks_written_to_disk": (
            rng.poisson(8.0, num_samples),
            rng.poisson(11.0, num_samples),
        ),
        "blocks_read_from_disk": (
            rng.poisson(10.0, num_samples),
            rng.poisson(10.0, num_samples),
        ),
    }


def test_fig18_metric_divergence(benchmark, table_printer):
    report = benchmark(lambda: metric_divergence_report(_generate_metric_samples()))

    ranked = sorted(report.items(), key=lambda item: item[1], reverse=True)
    table_printer(
        "Figure 18: D_KL(Z_O|H || Z_O|C) per candidate metric",
        ["metric", "KL divergence"],
        [[name, f"{value:.3f}"] for name, value in ranked],
    )

    # IDS alerts are the most informative metric, as in Appendix H.
    assert ranked[0][0] == "alerts_weighted_by_priority"
    # Metrics whose distribution barely changes rank near the bottom.
    assert report["blocks_read_from_disk"] < report["alerts_weighted_by_priority"] / 3
