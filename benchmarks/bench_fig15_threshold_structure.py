"""Figure 15 (Theorem 1 / Corollary 1): structure of the optimal thresholds.

(a) the optimal strategy partitions the belief space into a wait region and
    a recovery region [alpha*, 1];
(b) with a finite BTR window the thresholds alpha*_t are non-decreasing in
    the time since the last recovery.

The benchmark computes (a) with belief-space value iteration and (b) with a
finite-horizon backward induction over the belief grid — vectorized over
the grid: each window step is two ``(G, O)`` array operations (observation
likelihoods x interpolated continuation values) instead of a Python loop
over grid points and actions.  The threshold *curves* are then routed
through the batch simulation path: the time-dependent
``MultiThresholdStrategy`` and the stationary threshold are evaluated on
2000 batched episodes under the same BTR window with common random numbers,
checking that both structured strategies perform equivalently and clearly
beat a detuned threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    BetaBinomialObservationModel,
    MultiThresholdStrategy,
    NodeAction,
    NodeParameters,
    ThresholdStrategy,
)
from repro.sim import BatchRecoveryEngine, FleetScenario
from repro.solvers import RecoveryPOMDP, belief_value_iteration
from repro.solvers.pomdp import extract_threshold

WINDOW = 12
GRID_SIZE = 81
EVAL_EPISODES = 2000
EVAL_HORIZON = 200


def _finite_horizon_thresholds(pomdp: RecoveryPOMDP, window: int, grid_size: int) -> list[float]:
    """Backward induction over the BTR window; recovery is forced at the end.

    The per-step Bellman backup runs as array operations over the whole
    belief grid: with precomputed observation probabilities ``P[a, b, o]``
    and successor beliefs ``B'[a, b, o]``, one window step is
    ``Q = c + sum_o P * V(B')`` followed by an ``argmin`` over actions —
    no Python loop over grid points.
    """
    grid = np.linspace(0.0, 1.0, grid_size)
    num_observations = pomdp.num_observations
    probabilities = np.zeros((2, grid_size, num_observations))
    successors = np.zeros((2, grid_size, num_observations))
    for a in (0, 1):
        action = NodeAction(a)
        for b_index, belief in enumerate(grid):
            for o_index in range(num_observations):
                prob = pomdp.observation_probability(belief, action, o_index)
                probabilities[a, b_index, o_index] = prob
                if prob > 1e-12:
                    successors[a, b_index, o_index] = pomdp.belief_update(
                        belief, action, o_index
                    )
    immediate = np.array(
        [[pomdp.belief_cost(belief, NodeAction(a)) for belief in grid] for a in (0, 1)]
    )

    # Terminal step: recovery is forced (cost 1), so V_T(b) = 1.
    values = np.ones(grid_size)
    thresholds: list[float] = []
    for _ in range(window - 1):
        future = np.interp(successors, grid, values)  # (2, G, O)
        action_values = immediate + (probabilities * future).sum(axis=2)
        policy = np.argmin(action_values, axis=0)
        thresholds.append(extract_threshold(grid, policy))
        values = action_values.min(axis=0)
    thresholds.reverse()  # thresholds[t] = alpha*_t for t steps since last recovery
    return thresholds


def _compute():
    pomdp = RecoveryPOMDP(
        NodeParameters(p_a=0.05, p_u=0.02), BetaBinomialObservationModel(), discount=0.95
    )
    stationary = belief_value_iteration(pomdp, grid_size=101, max_iterations=400)
    finite = _finite_horizon_thresholds(pomdp, WINDOW, GRID_SIZE)

    # Route the threshold curves through the batch simulation path: evaluate
    # the stationary and time-dependent strategies (plus a detuned control)
    # under the same finite BTR window with common random numbers.
    scenario = FleetScenario.single_node(
        NodeParameters(p_a=0.05, p_u=0.02, delta_r=WINDOW),
        BetaBinomialObservationModel(),
        horizon=EVAL_HORIZON,
    )
    engine = BatchRecoveryEngine(scenario)
    costs = {
        "multi": float(
            engine.run(
                MultiThresholdStrategy.from_vector(finite, delta_r=WINDOW),
                EVAL_EPISODES,
                seed=0,
            ).average_cost.mean()
        ),
        "stationary": float(
            engine.run(
                ThresholdStrategy(stationary.threshold()), EVAL_EPISODES, seed=0
            ).average_cost.mean()
        ),
        "detuned": float(
            engine.run(
                ThresholdStrategy(0.9), EVAL_EPISODES, seed=0
            ).average_cost.mean()
        ),
    }
    return stationary, finite, costs


def test_fig15_threshold_structure(benchmark, table_printer):
    stationary, finite_thresholds, costs = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )

    table_printer(
        "Figure 15b: optimal recovery thresholds alpha*_t within a BTR window",
        ["t (steps since recovery)", "alpha*_t"],
        [[t, f"{alpha:.2f}"] for t, alpha in enumerate(finite_thresholds)],
    )
    print(f"Figure 15a: stationary threshold alpha* = {stationary.threshold():.2f}")
    print(
        "batch-path evaluation (J, Delta_R = {w}): multi {m:.4f}, stationary "
        "{s:.4f}, detuned(0.9) {d:.4f}".format(
            w=WINDOW, m=costs["multi"], s=costs["stationary"], d=costs["detuned"]
        )
    )

    # (a) Threshold structure: the recovery region is an upper interval.
    policy = stationary.policy
    first_recover = int(np.argmax(policy)) if policy.any() else len(policy)
    assert np.all(policy[first_recover:] == 1)
    # (b) Corollary 1: thresholds are non-decreasing toward the forced recovery.
    assert all(
        b >= a - 0.051  # one grid cell of slack
        for a, b in zip(finite_thresholds, finite_thresholds[1:])
    )
    # Batch-path routing: the two structured strategies are statistically
    # interchangeable under the BTR window and clearly beat a detuned one.
    assert abs(costs["multi"] - costs["stationary"]) < 0.02
    assert costs["multi"] < costs["detuned"] - 0.03
    assert costs["stationary"] < costs["detuned"] - 0.03
