"""Figure 15 (Theorem 1 / Corollary 1): structure of the optimal thresholds.

(a) the optimal strategy partitions the belief space into a wait region and
    a recovery region [alpha*, 1];
(b) with a finite BTR window the thresholds alpha*_t are non-decreasing in
    the time since the last recovery.

The benchmark computes (a) with belief-space value iteration and (b) with a
finite-horizon backward induction over the belief grid, prints the threshold
sequence, and asserts both structural properties.
"""

from __future__ import annotations

import numpy as np

from repro.core import BetaBinomialObservationModel, NodeAction, NodeParameters
from repro.solvers import RecoveryPOMDP, belief_value_iteration
from repro.solvers.pomdp import extract_threshold

WINDOW = 12
GRID_SIZE = 81


def _finite_horizon_thresholds(pomdp: RecoveryPOMDP, window: int, grid_size: int) -> list[float]:
    """Backward induction over the BTR window; recovery is forced at the end."""
    grid = np.linspace(0.0, 1.0, grid_size)
    successors = {}
    for b_index, belief in enumerate(grid):
        for action in (NodeAction.WAIT, NodeAction.RECOVER):
            entries = []
            for o_index in range(pomdp.num_observations):
                prob = pomdp.observation_probability(belief, action, o_index)
                if prob <= 1e-12:
                    continue
                entries.append((prob, pomdp.belief_update(belief, action, o_index)))
            successors[(b_index, int(action))] = entries

    # Terminal step: recovery is forced (cost 1), so V_T(b) = 1.
    values = np.ones(grid_size)
    thresholds: list[float] = []
    for _ in range(window - 1):
        new_values = np.empty(grid_size)
        policy = np.zeros(grid_size, dtype=int)
        for b_index, belief in enumerate(grid):
            action_values = []
            for action in (NodeAction.WAIT, NodeAction.RECOVER):
                immediate = pomdp.belief_cost(belief, action)
                future = sum(
                    p * np.interp(nb, grid, values)
                    for p, nb in successors[(b_index, int(action))]
                )
                action_values.append(immediate + future)
            best = int(np.argmin(action_values))
            new_values[b_index] = action_values[best]
            policy[b_index] = best
        thresholds.append(extract_threshold(grid, policy))
        values = new_values
    thresholds.reverse()  # thresholds[t] = alpha*_t for t steps since last recovery
    return thresholds


def _compute():
    pomdp = RecoveryPOMDP(
        NodeParameters(p_a=0.05, p_u=0.02), BetaBinomialObservationModel(), discount=0.95
    )
    stationary = belief_value_iteration(pomdp, grid_size=101, max_iterations=400)
    finite = _finite_horizon_thresholds(pomdp, WINDOW, GRID_SIZE)
    return stationary, finite


def test_fig15_threshold_structure(benchmark, table_printer):
    stationary, finite_thresholds = benchmark.pedantic(_compute, rounds=1, iterations=1)

    table_printer(
        "Figure 15b: optimal recovery thresholds alpha*_t within a BTR window",
        ["t (steps since recovery)", "alpha*_t"],
        [[t, f"{alpha:.2f}"] for t, alpha in enumerate(finite_thresholds)],
    )
    print(f"Figure 15a: stationary threshold alpha* = {stationary.threshold():.2f}")

    # (a) Threshold structure: the recovery region is an upper interval.
    policy = stationary.policy
    first_recover = int(np.argmax(policy)) if policy.any() else len(policy)
    assert np.all(policy[first_recover:] == 1)
    # (b) Corollary 1: thresholds are non-decreasing toward the forced recovery.
    assert all(
        b >= a - 0.051  # one grid cell of slack
        for a, b in zip(finite_thresholds, finite_thresholds[1:])
    )
