"""Figure 14: sensitivity of the optimal recovery cost to the detection model.

The paper studies how the achievable cost J*_i depends on (left) how well
the observation model separates the healthy and compromised conditions
(measured by D_KL(Z(.|H) || Z(.|C))) and (right) how far the controller's
model \\hat{Z} is from the true distribution (model mismatch).  Both curves
decrease/increase monotonically: more informative detectors give lower cost,
larger mismatch gives higher cost.

This benchmark sweeps a family of observation models with increasing
separation and a family of increasingly-mismatched controller models, solves
the recovery problem for each with CEM (as in Appendix E), and checks the
monotone trends.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import (
    DiscreteObservationModel,
    NodeParameters,
    NodeState,
    ThresholdStrategy,
)
from repro.solvers import CrossEntropyMethod, RecoverySimulator, solve_recovery_problem


def _model_with_separation(shift: float) -> DiscreteObservationModel:
    """Truncated-Poisson-like model whose compromised mean is shifted by `shift`."""
    support = np.arange(10)
    healthy = np.exp(-0.5 * (support - 2.0) ** 2 / 2.0)
    compromised = np.exp(-0.5 * (support - (2.0 + shift)) ** 2 / 2.0)
    return DiscreteObservationModel(list(support), healthy, compromised)


def _sweep_separation():
    params = NodeParameters(p_a=0.1, delta_r=math.inf)
    results = []
    for shift in (1.0, 2.5, 4.0, 6.0):
        model = _model_with_separation(shift)
        solution = solve_recovery_problem(
            params,
            model,
            CrossEntropyMethod(population_size=15, iterations=5),
            horizon=60,
            episodes_per_evaluation=3,
            final_evaluation_episodes=15,
            seed=0,
        )
        results.append((model.detection_divergence(), solution.estimated_cost))
    return results


def _sweep_mismatch():
    """Evaluate the true-model-optimal threshold under increasingly wrong beliefs."""
    params = NodeParameters(p_a=0.1, delta_r=math.inf)
    true_model = _model_with_separation(4.0)
    simulator = RecoverySimulator(params, true_model, horizon=60)
    results = []
    for mismatch_shift in (0.0, 1.5, 3.0):
        controller_model = _model_with_separation(4.0 - mismatch_shift)
        solution = solve_recovery_problem(
            params,
            controller_model,
            CrossEntropyMethod(population_size=15, iterations=5),
            horizon=60,
            episodes_per_evaluation=3,
            final_evaluation_episodes=5,
            seed=0,
        )
        # Cost when the strategy optimized under the mismatched model is
        # deployed against the true alert process; the deployment-style
        # evaluation runs on the vectorized batch engine (bit-exact with
        # the scalar path under the shared seed).
        deployed_cost = simulator.estimate_cost(
            ThresholdStrategy(solution.strategy.thresholds[0]),
            num_episodes=15,
            seed=1,
            batch=True,
        )
        divergence = controller_model.divergence_to(true_model, state=NodeState.COMPROMISED)
        results.append((mismatch_shift, divergence, deployed_cost))
    return results


def test_fig14_detection_sensitivity(benchmark, table_printer):
    separation_results, mismatch_results = benchmark.pedantic(
        lambda: (_sweep_separation(), _sweep_mismatch()), rounds=1, iterations=1
    )

    table_printer(
        "Figure 14 (left): optimal cost vs detector informativeness",
        ["D_KL(Z(.|H) || Z(.|C))", "J*_i"],
        [[f"{d:.2f}", f"{c:.3f}"] for d, c in separation_results],
    )
    table_printer(
        "Figure 14 (right): deployed cost vs model mismatch",
        ["mismatch shift", "D_KL(model || truth)", "J_i"],
        [[f"{s:.1f}", f"{d:.2f}", f"{c:.3f}"] for s, d, c in mismatch_results],
    )

    # Left plot: more informative detectors achieve (weakly) lower cost.
    divergences = [d for d, _ in separation_results]
    costs = [c for _, c in separation_results]
    assert divergences == sorted(divergences)
    assert costs[-1] <= costs[0] + 0.02
    # Right plot: larger mismatch never helps.
    deployed = [c for _, _, c in mismatch_results]
    assert deployed[-1] >= deployed[0] - 0.02
