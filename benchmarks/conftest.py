"""Shared helpers for the per-figure/per-table benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md for the index).  The workloads are scaled down
relative to the paper (fewer seeds, shorter horizons) so that the full
harness runs in minutes on a laptop; the *shape* of each result — orderings,
crossovers, scaling trends — is what is being reproduced, and each module
asserts that shape where it is deterministic enough to check.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Every table printed by a benchmark is also appended here, so the
#: regenerated rows survive pytest's output capturing.
RESULTS_FILE = Path(__file__).parent / "results_latest.txt"


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small aligned table (the rows/series the paper reports).

    The table goes to stdout (visible with ``pytest -s``) and is appended to
    ``benchmarks/results_latest.txt`` so results persist across runs.
    """
    widths = [
        max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture
def table_printer():
    return print_table
