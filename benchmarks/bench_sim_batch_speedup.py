"""Throughput benchmarks: batch engine vs scalar, and kernel backends.

Two acceptance bars are asserted here, both on the 1000-episode Monte-Carlo
evaluation that Algorithm 1 and the Table 2/7 experiments are built on:

* the vectorized batch engine is >= 10x faster than the scalar
  :class:`~repro.solvers.evaluation.RecoverySimulator` while reproducing its
  per-episode statistics *exactly* (same seed, same results);
* the fused kernel backend (PR 7) is >= 3x faster than the ``reference``
  backend (the PR-6 step path) while staying bit-exact, and the optional
  numba backend — when installed — is >= 10x faster than ``reference``
  within its versioned tolerance tier.

Backend timings are interleaved (reference and fused alternate inside the
same measurement loop) and reduced with min-of-N, so host jitter moves both
numerators and denominators together and the reported ratio is stable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
from repro.sim import BatchRecoveryEngine, FleetScenario, available_backends
from repro.sim.kernels import NUMBA_TOLERANCE_TIER
from repro.solvers import RecoverySimulator

NUM_EPISODES = 1000
HORIZON = 200
SEED = 0

#: Interleaved min-of-N schedule for the backend comparison.
_REPS = 3
_INNER = 10


def _measure():
    simulator = RecoverySimulator(
        NodeParameters(p_a=0.1, delta_r=15), BetaBinomialObservationModel(), horizon=HORIZON
    )
    strategy = ThresholdStrategy(0.6)

    start = time.perf_counter()
    scalar_results = simulator.evaluate(strategy, num_episodes=NUM_EPISODES, seed=SEED)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = simulator.evaluate(
        strategy, num_episodes=NUM_EPISODES, seed=SEED, batch=True
    )
    batch_seconds = time.perf_counter() - start

    return scalar_results, batch_results, scalar_seconds, batch_seconds


def test_batch_engine_speedup(benchmark, table_printer):
    scalar_results, batch_results, scalar_seconds, batch_seconds = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    steps = NUM_EPISODES * HORIZON
    speedup = scalar_seconds / batch_seconds

    table_printer(
        f"Batch engine throughput ({NUM_EPISODES} episodes x {HORIZON} steps)",
        ["engine", "time (s)", "steps/s", "speedup"],
        [
            ["scalar", f"{scalar_seconds:.2f}", f"{steps / scalar_seconds:,.0f}", "1.0x"],
            ["batch", f"{batch_seconds:.3f}", f"{steps / batch_seconds:,.0f}", f"{speedup:.1f}x"],
        ],
    )

    # Exact parity: same seed, identical per-episode statistics.
    assert scalar_results == batch_results
    # Acceptance bar: >= 10x on the 1000-episode evaluation.
    assert speedup >= 10.0, f"batch engine only {speedup:.1f}x faster than scalar"


def _assert_exact_parity(reference, other) -> None:
    """Every field of :class:`BatchSimulationResult` bit-equal."""
    for name in (
        "average_cost",
        "time_to_recovery",
        "recovery_frequency",
        "num_recoveries",
        "num_compromises",
    ):
        assert np.array_equal(getattr(reference, name), getattr(other, name)), name
    assert reference.steps == other.steps
    if reference.availability is None:
        assert other.availability is None
    else:
        assert np.array_equal(reference.availability, other.availability)


def _min_interleaved(runners: dict[str, object]) -> dict[str, float]:
    """Min-of-N seconds per backend, alternating backends inside each pass."""
    best = {name: float("inf") for name in runners}
    for _rep in range(_REPS):
        for _i in range(_INNER):
            for name, run in runners.items():
                start = time.perf_counter()
                run()
                elapsed = time.perf_counter() - start
                best[name] = min(best[name], elapsed)
    return best


def _measure_backends():
    scenario = FleetScenario.single_node(
        NodeParameters(p_a=0.1, delta_r=15), BetaBinomialObservationModel(), horizon=HORIZON
    )
    strategy = ThresholdStrategy(0.6)
    engines = {
        name: BatchRecoveryEngine(scenario, backend=name) for name in available_backends()
    }
    # One shared pre-drawn buffer: timings cover the step path, not stream
    # generation (and the fused backend's rank precompute is amortized by
    # its per-buffer memo, exactly as in Algorithm 1's evaluation loops).
    uniforms = engines["reference"].draw_uniforms(SEED, NUM_EPISODES)
    results = {}
    for name, engine in engines.items():
        results[name] = engine.run(strategy, uniforms=uniforms)  # warmup + parity run
    seconds = _min_interleaved(
        {
            name: (lambda engine=engine: engine.run(strategy, uniforms=uniforms))
            for name, engine in engines.items()
        }
    )
    profile = engines["fused"].run(strategy, uniforms=uniforms, profile=True).profile
    return results, seconds, profile


def test_kernel_backend_speedup(benchmark, table_printer):
    results, seconds, profile = benchmark.pedantic(_measure_backends, rounds=1, iterations=1)
    steps = NUM_EPISODES * HORIZON
    ref_seconds = seconds["reference"]

    rows = []
    for name in sorted(seconds, key=seconds.get, reverse=True):
        speedup = ref_seconds / seconds[name]
        rows.append(
            [
                name,
                f"{seconds[name] * 1e3:.2f}",
                f"{steps / seconds[name]:,.0f}",
                f"{speedup:.2f}x",
            ]
        )
    table_printer(
        f"Kernel backends ({NUM_EPISODES} episodes x {HORIZON} steps, min of "
        f"{_REPS}x{_INNER} interleaved)",
        ["backend", "time (ms)", "steps/s", "vs reference"],
        rows,
    )
    table_printer(
        "Fused backend per-phase profile",
        ["phase", "time (ms)", "share"],
        [[name, f"{ms:.3f}", f"{share:.1%}"] for name, ms, share in profile.rows()],
    )

    # The fused backend is bit-exact against the PR-6 reference path.
    _assert_exact_parity(results["reference"], results["fused"])
    fused_speedup = ref_seconds / seconds["fused"]
    assert fused_speedup >= 3.0, f"fused backend only {fused_speedup:.2f}x over reference"

    if "numba" in seconds:  # optional dependency: only asserted when installed
        numba_speedup = ref_seconds / seconds["numba"]
        assert numba_speedup >= 10.0, f"numba backend only {numba_speedup:.2f}x over reference"
        tier = NUMBA_TOLERANCE_TIER
        for name in ("average_cost", "time_to_recovery", "recovery_frequency"):
            np.testing.assert_allclose(
                getattr(results["numba"], name).mean(),
                getattr(results["reference"], name).mean(),
                atol=tier["stat_atol"],
                rtol=tier["stat_rtol"],
            )
