"""Throughput benchmark: vectorized batch engine vs scalar simulator.

The acceptance bar for the repro.sim engine is a >= 10x speedup on the
1000-episode Monte-Carlo evaluation that Algorithm 1 and the Table 2/7
experiments are built on, while reproducing the scalar per-episode
statistics *exactly* (same seed, same results — not just statistically
equivalent).  This benchmark measures both simulators on the same workload,
prints the throughput table, and asserts the speedup and the exact parity.
"""

from __future__ import annotations

import time

from repro.core import BetaBinomialObservationModel, NodeParameters, ThresholdStrategy
from repro.solvers import RecoverySimulator

NUM_EPISODES = 1000
HORIZON = 200
SEED = 0


def _measure():
    simulator = RecoverySimulator(
        NodeParameters(p_a=0.1, delta_r=15), BetaBinomialObservationModel(), horizon=HORIZON
    )
    strategy = ThresholdStrategy(0.6)

    start = time.perf_counter()
    scalar_results = simulator.evaluate(strategy, num_episodes=NUM_EPISODES, seed=SEED)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = simulator.evaluate(
        strategy, num_episodes=NUM_EPISODES, seed=SEED, batch=True
    )
    batch_seconds = time.perf_counter() - start

    return scalar_results, batch_results, scalar_seconds, batch_seconds


def test_batch_engine_speedup(benchmark, table_printer):
    scalar_results, batch_results, scalar_seconds, batch_seconds = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    steps = NUM_EPISODES * HORIZON
    speedup = scalar_seconds / batch_seconds

    table_printer(
        f"Batch engine throughput ({NUM_EPISODES} episodes x {HORIZON} steps)",
        ["engine", "time (s)", "steps/s", "speedup"],
        [
            ["scalar", f"{scalar_seconds:.2f}", f"{steps / scalar_seconds:,.0f}", "1.0x"],
            ["batch", f"{batch_seconds:.3f}", f"{steps / batch_seconds:,.0f}", f"{speedup:.1f}x"],
        ],
    )

    # Exact parity: same seed, identical per-episode statistics.
    assert scalar_results == batch_results
    # Acceptance bar: >= 10x on the 1000-episode evaluation.
    assert speedup >= 10.0, f"batch engine only {speedup:.1f}x faster than scalar"
