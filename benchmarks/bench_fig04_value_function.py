"""Figure 4: the optimal value function V*(b) and its alpha-vectors.

The paper plots the piecewise-linear optimal value function of Problem 1
(computed by dynamic programming over alpha-vectors) for p_A = 0.01.  This
benchmark regenerates the curve: it runs incremental pruning, prints the
value at a grid of beliefs along with the number of alpha-vectors, and
checks the structural properties (monotone, concave lower envelope).
"""

from __future__ import annotations

import numpy as np

from repro.core import BetaBinomialObservationModel, NodeParameters
from repro.solvers import RecoveryPOMDP, incremental_pruning


def _solve():
    pomdp = RecoveryPOMDP(
        NodeParameters(p_a=0.01, p_u=0.02), BetaBinomialObservationModel(), discount=0.95
    )
    return incremental_pruning(pomdp, horizon=30)


def test_fig04_value_function(benchmark, table_printer):
    result = benchmark(_solve)

    grid = np.linspace(0.05, 1.0, 20)
    values = [result.value_at(b) for b in grid]
    table_printer(
        "Figure 4: optimal value function V*(b) (alpha-vector envelope)",
        ["belief b", "V*(b)", "action"],
        [
            [f"{b:.2f}", f"{v:.4f}", result.action_at(b).symbol]
            for b, v in zip(grid, values)
        ],
    )
    print(f"alpha-vectors: {len(result.alpha_vectors)}")

    # Shape checks: V* is non-decreasing in the belief and concave
    # (lower envelope of linear pieces), as in Fig. 4.
    assert all(b <= a + 1e-9 for a, b in zip(values[::-1], values[::-1][1:]))
    mid = result.value_at(0.5)
    assert mid >= 0.5 * (result.value_at(0.0) + result.value_at(1.0)) - 1e-9
    assert len(result.alpha_vectors) >= 2
