"""Class-aware replication on the heterogeneous closed-loop control plane.

PR 4 made fleets heterogeneous (Table 6 style ``NodeClass`` mixes) but the
system level still treated "add a node" as classless: any addition
activated the first free slot, and one fleet-wide ``Delta_R`` served every
class.  This benchmark exercises the class-aware system level end to end:

* the replication action space is ``{wait, add(class c)}`` — the
  class-indexed Algorithm 2 (:func:`solve_class_aware_replication_lp` /
  Lagrangian) solved on a :class:`ClassAwareSystemModel` fitted from the
  per-class empirical ``f_S`` of the batched fleet environment;
* the chosen class is threaded through slot activation on both run paths
  of the :class:`TwoLevelController`;
* per-class BTR deadlines come from Algorithm 1 run on each class's own
  node POMDP (:func:`optimize_class_deltas`).

Asserted:

(i)   the batched class-aware closed loop reproduces the scalar per-node
      reference loop **bit for bit** under a shared SeedSequence tree
      (decision trace including the chosen classes, integer metrics,
      per-class metrics);
(ii)  the batched path is >= 5x faster than the scalar reference on the
      same class-aware workload;
(iii) on a Table-6-style mixed fleet the class-aware strategy achieves
      average cost <= the class-blind strategy with the same add pressure
      (and no worse availability): choosing *which* class to add
      dominates first-free-slot activation.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.control import (
    ClosedLoopCell,
    TwoLevelController,
    fit_class_aware_system_model,
    mixed_closed_loop_sweep,
    optimize_class_deltas,
)
from repro.core import (
    BetaBinomialObservationModel,
    ClassPreferenceReplicationStrategy,
    NodeParameters,
    ReplicationThresholdStrategy,
    ThresholdStrategy,
)
from repro.envs import FleetVectorEnv, StrategyPolicy, rollout
from repro.solvers import (
    solve_class_aware_replication_lagrangian,
    solve_class_aware_replication_lp,
)
from repro.sim import FleetScenario, NodeClass

NUM_ENVS = 100
HORIZON = 150
INITIAL_NODES = 4

#: Table 6 in miniature, with enough crash churn that additions are a
#: recurring, scarce resource — the regime where the *class* of an added
#: node matters.  The vulnerable class occupies the low slot indices, so a
#: class-blind first-free-slot add always lands on a vulnerable image first.
HARDENED = NodeParameters(p_a=0.05, p_c1=0.02, p_c2=0.06, eta=1.5, delta_r=25)
VULNERABLE = NodeParameters(p_a=0.25, p_c1=0.04, p_c2=0.15, eta=3.0, delta_r=10)
CLASS_NAMES = ("vulnerable", "hardened")


def _mixed_scenario(horizon: int = HORIZON) -> FleetScenario:
    model = BetaBinomialObservationModel()
    return FleetScenario.mixed(
        [
            NodeClass("vulnerable", VULNERABLE, model, count=4),
            NodeClass("hardened", HARDENED, model, count=4),
        ],
        horizon=horizon,
        f=1,
    )


def _run_pair(scenario: FleetScenario, seed: int):
    """Class-blind vs class-aware with identical add pressure and seeds."""
    blind = ReplicationThresholdStrategy(beta=3)
    aware = ClassPreferenceReplicationStrategy(blind, "hardened", CLASS_NAMES)
    results = {}
    for name, strategy in (("class-blind", blind), ("class-aware", aware)):
        controller = TwoLevelController(
            scenario,
            NUM_ENVS,
            recovery_policy=ThresholdStrategy(0.75),
            replication_strategy=strategy,
            initial_nodes=INITIAL_NODES,
        )
        results[name] = controller.run(seed=seed)
    return results


def test_class_aware_dominates_class_blind(benchmark, table_printer):
    scenario = _mixed_scenario()
    results = benchmark.pedantic(
        lambda: _run_pair(scenario, seed=0), rounds=1, iterations=1
    )

    rows = []
    for name, result in results.items():
        summary = result.summary()
        classes = result.class_summary()
        rows.append(
            [
                name,
                f"{summary['average_cost'][0]:.3f}±{summary['average_cost'][1]:.3f}",
                f"{summary['availability'][0]:.2f}",
                f"{summary['average_nodes'][0]:.2f}",
                f"{classes['hardened']['recovery_frequency'][0]:.3f}",
                f"{classes['vulnerable']['recovery_frequency'][0]:.3f}",
            ]
        )
    table_printer(
        "Class-aware vs class-blind replication (mixed fleet, closed loop)",
        ["strategy", "cost", "T(A)", "J (nodes)", "F(R) hard", "F(R) vuln"],
        rows,
    )

    # -- (iii) class choice dominates first-free-slot activation -------------
    blind, aware = results["class-blind"], results["class-aware"]
    assert aware.average_cost.mean() <= blind.average_cost.mean(), (
        f"class-aware cost {aware.average_cost.mean():.4f} must not exceed "
        f"class-blind {blind.average_cost.mean():.4f}"
    )
    assert aware.availability.mean() >= blind.availability.mean() - 1e-9, (
        "steering additions toward the hardened class cannot hurt availability"
    )


def test_class_aware_solver_pipeline(table_printer):
    """Fit the class-aware CMDP from per-class empirical f_S and solve it."""
    scenario = _mixed_scenario(horizon=100)
    env = FleetVectorEnv(scenario, 100)
    rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    model = fit_class_aware_system_model(env, epsilon_a=0.6)

    assert model.class_names == CLASS_NAMES
    assert model.num_actions == 3
    # The hardened image must certify a higher fresh-node survival: its add
    # kernel shifts more mass upward than the vulnerable one's.
    states = np.arange(model.num_states)
    expected_next = [
        float((model.transition[a] * states[None, :]).sum(axis=1).mean())
        for a in (1, 2)
    ]
    assert expected_next[1] > expected_next[0], (
        f"hardened add kernel must drift higher than vulnerable: {expected_next}"
    )

    lp = solve_class_aware_replication_lp(model)
    lagrangian = solve_class_aware_replication_lagrangian(model)
    assert lp.feasible
    add_mass = lp.occupancy[:, 1:].sum(axis=0)
    table_printer(
        "Class-aware Algorithm 2 on the fitted mixed-fleet kernel",
        ["route", "J", "T(A)", "rho(add vuln)", "rho(add hard)"],
        [
            [
                "LP (occupancy)",
                f"{lp.expected_cost:.3f}",
                f"{lp.availability:.3f}",
                f"{add_mass[0]:.4f}",
                f"{add_mass[1]:.4f}",
            ],
            [
                "Lagrangian",
                f"kappa={lagrangian.kappa:.3f}",
                f"lambda in [{lagrangian.lambda_low:.2f}, {lagrangian.lambda_high:.2f}]",
                "-",
                "-",
            ],
        ],
    )
    # The optimal occupancy should put its add mass on the class with the
    # better survival-per-cost profile (hardened here).
    assert add_mass[1] >= add_mass[0], (
        f"expected the add mass on the hardened class, got {add_mass}"
    )


def test_class_aware_bit_parity_and_speedup(table_printer):
    scenario = _mixed_scenario()
    env = FleetVectorEnv(_mixed_scenario(horizon=100), 100)
    rollout(env, StrategyPolicy(ThresholdStrategy(0.75)), seed=0)
    model = fit_class_aware_system_model(env, epsilon_a=0.6)
    strategy = solve_class_aware_replication_lagrangian(model).strategy

    # -- (i) bit-exact parity with the scalar per-node reference loop --------
    parity = TwoLevelController(
        scenario,
        num_envs=10,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=strategy,
        initial_nodes=INITIAL_NODES,
        record_decisions=True,
    )
    batched = parity.run(seed=123)
    batched_trace = parity.last_decision_trace
    scalar = parity.run_scalar_reference(seed=123)
    scalar_trace = parity.last_decision_trace
    for t in range(scenario.horizon):
        assert np.array_equal(batched_trace.states[t], scalar_trace.states[t])
        assert np.array_equal(batched_trace.adds[t], scalar_trace.adds[t])
        assert np.array_equal(
            batched_trace.emergencies[t], scalar_trace.emergencies[t]
        )
        assert np.array_equal(
            batched_trace.add_classes[t], scalar_trace.add_classes[t]
        )
        assert np.array_equal(batched_trace.evictions[t], scalar_trace.evictions[t])
    assert np.array_equal(batched.additions, scalar.additions)
    assert np.array_equal(batched.evictions, scalar.evictions)
    assert np.array_equal(batched.availability, scalar.availability)
    for label in CLASS_NAMES:
        assert np.allclose(
            batched.class_average_cost[label], scalar.class_average_cost[label]
        )
        assert np.allclose(
            batched.class_recovery_frequency[label],
            scalar.class_recovery_frequency[label],
        )

    # -- (ii) >= 5x over the scalar per-node reference loop ------------------
    timing = TwoLevelController(
        scenario,
        num_envs=NUM_ENVS,
        recovery_policy=ThresholdStrategy(0.75),
        replication_strategy=strategy,
        initial_nodes=INITIAL_NODES,
    )
    start = time.perf_counter()
    timing.run(seed=7)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    timing.run_scalar_reference(seed=7)
    scalar_seconds = time.perf_counter() - start
    speedup = scalar_seconds / batched_seconds
    table_printer(
        "Class-aware closed-loop control plane speedup",
        ["path", "seconds", "speedup"],
        [
            ["batched", f"{batched_seconds:.3f}", f"{speedup:.1f}x"],
            ["scalar reference", f"{scalar_seconds:.3f}", "1.0x"],
        ],
    )
    assert speedup >= 5.0, f"batched path only {speedup:.1f}x faster than scalar"


def test_per_class_delta_optimization(table_printer):
    """Algorithm 1 per class: each class gets its own optimal Delta_R."""
    scenario = _mixed_scenario(horizon=60)
    results = optimize_class_deltas(
        scenario.node_classes(),
        delta_grid=(5, 15, math.inf),
        horizon=60,
        episodes_per_evaluation=5,
        final_evaluation_episodes=10,
        seed=0,
    )
    rows = [
        [
            name,
            f"{result.delta_r:g}",
            f"{result.estimated_cost:.3f}",
            "  ".join(f"{d:g}:{c:.3f}" for d, c in sorted(result.costs.items())),
        ]
        for name, result in results.items()
    ]
    table_printer(
        "Per-class Delta_R optimization (Algorithm 1 per node class)",
        ["class", "Delta_R*", "J_i", "cost per deadline"],
        rows,
    )
    for name, result in results.items():
        assert result.delta_r in {5.0, 15.0, math.inf}
        assert result.estimated_cost == min(result.costs.values())
        assert result.solution.strategy is not None

    # Route the deadlines through the sweep API's optimize_deltas mode on a
    # deliberately tiny budget (the mode itself is what is exercised here).
    table = mixed_closed_loop_sweep(
        {"table6-mini": scenario},
        cells=[
            ClosedLoopCell(
                "tolerance",
                ThresholdStrategy(0.75),
                ReplicationThresholdStrategy(beta=3),
            )
        ],
        num_envs=20,
        seed=0,
        initial_nodes=INITIAL_NODES,
        optimize_deltas=True,
        delta_grid=(10, math.inf),
        delta_episodes_per_evaluation=3,
    )
    result = table[("table6-mini", "tolerance")]
    assert result.class_average_cost is not None
    assert set(result.class_average_cost) == set(CLASS_NAMES)
