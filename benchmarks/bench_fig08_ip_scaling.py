"""Figure 8 (and the IP row of Table 2): compute time versus Delta_R.

The paper's key scaling observation is that the exact dynamic-programming
baseline (Incremental Pruning) becomes computationally intractable as the
BTR window grows, while the parametric optimizers of Algorithm 1 stay fast.
This benchmark measures the compute time of IP for increasing horizons
(which is how Delta_R enters the finite-horizon formulation of Eq. 16) and
of CEM for the same instances, and asserts that IP's cost grows much faster.
"""

from __future__ import annotations

import time

from repro.core import BetaBinomialObservationModel, NodeParameters
from repro.solvers import (
    CrossEntropyMethod,
    RecoveryPOMDP,
    incremental_pruning,
    solve_recovery_problem,
)

HORIZONS = (5, 15, 25)
OBSERVATION_MODEL = BetaBinomialObservationModel()


def _measure():
    pomdp = RecoveryPOMDP(NodeParameters(p_a=0.1), OBSERVATION_MODEL, discount=0.95)
    ip_times = {}
    ip_backups = {}
    for horizon in HORIZONS:
        start = time.perf_counter()
        result = incremental_pruning(pomdp, horizon=horizon, prune_grid_size=801)
        ip_times[horizon] = time.perf_counter() - start
        ip_backups[horizon] = result.backups
    cem_times = {}
    for horizon in HORIZONS:
        params = NodeParameters(p_a=0.1, delta_r=float(horizon))
        solution = solve_recovery_problem(
            params,
            OBSERVATION_MODEL,
            CrossEntropyMethod(population_size=10, iterations=4),
            horizon=50,
            episodes_per_evaluation=2,
            final_evaluation_episodes=2,
            seed=0,
        )
        cem_times[horizon] = solution.wall_clock_seconds
    return ip_times, ip_backups, cem_times


def test_fig08_compute_time_scaling(benchmark, table_printer):
    ip_times, ip_backups, cem_times = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_printer(
        "Figure 8: compute time vs Delta_R",
        ["Delta_R", "IP time (s)", "IP backups", "CEM time (s)"],
        [
            [h, f"{ip_times[h]:.3f}", ip_backups[h], f"{cem_times[h]:.3f}"]
            for h in HORIZONS
        ],
    )

    # IP's work grows with the horizon (the Table 2 bottom-row effect) ...
    assert ip_times[HORIZONS[-1]] > ip_times[HORIZONS[0]]
    assert ip_backups[HORIZONS[-1]] > ip_backups[HORIZONS[0]]
    # ... while the growth of Algorithm 1 with CEM is comparatively mild.
    ip_growth = ip_times[HORIZONS[-1]] / max(ip_times[HORIZONS[0]], 1e-9)
    cem_growth = cem_times[HORIZONS[-1]] / max(cem_times[HORIZONS[0]], 1e-9)
    assert ip_growth > cem_growth
