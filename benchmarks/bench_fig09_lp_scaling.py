"""Figure 9: compute time of Algorithm 2 (the CMDP LP) versus s_max.

The paper reports that the LP of Algorithm 2 solves Problem 2 within minutes
for systems with up to 2048 nodes.  This benchmark solves the LP for growing
state-space sizes, prints the time series, and checks that (a) every
instance is solved to feasibility and (b) the time grows polynomially
(super-linear growth is expected, blow-ups are not).
"""

from __future__ import annotations

import time

from repro.core import BinomialSystemModel
from repro.solvers import solve_replication_lp

SMAX_VALUES = (4, 8, 16, 32, 64, 128)


def _measure():
    timings = {}
    for smax in SMAX_VALUES:
        model = BinomialSystemModel(
            smax=smax,
            f=3,
            per_node_failure_probability=0.1,
            regeneration_probability=0.05,
            epsilon_a=0.9,
        )
        start = time.perf_counter()
        solution = solve_replication_lp(model)
        elapsed = time.perf_counter() - start
        timings[smax] = (elapsed, solution.feasible, solution.expected_cost)
    return timings


def test_fig09_lp_scaling(benchmark, table_printer):
    timings = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table_printer(
        "Figure 9: Algorithm 2 (LP) compute time vs s_max",
        ["s_max", "time (s)", "feasible", "J"],
        [
            [smax, f"{timings[smax][0]:.4f}", timings[smax][1], f"{timings[smax][2]:.2f}"]
            for smax in SMAX_VALUES
        ],
    )

    assert all(timings[smax][1] for smax in SMAX_VALUES), "all instances must be feasible"
    # Polynomial growth: time for the largest instance is bounded by a cubic
    # factor in the state-space ratio (generous, catches exponential blow-up).
    ratio = timings[SMAX_VALUES[-1]][0] / max(timings[SMAX_VALUES[0]][0], 1e-6)
    size_ratio = SMAX_VALUES[-1] / SMAX_VALUES[0]
    assert ratio < size_ratio ** 4
